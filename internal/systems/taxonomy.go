package systems

import (
	"fmt"
	"strings"
)

// ActionType is the embodied action category of Table I: virtual action,
// tool usage, or physical action.
type ActionType string

// Action types.
const (
	Virtual  ActionType = "V"
	Tool     ActionType = "T"
	Physical ActionType = "E"
)

// TaxonomyEntry is one row of the paper's Table I: a published embodied
// system classified by paradigm and module composition.
type TaxonomyEntry struct {
	Name     string
	Paradigm Paradigm
	Sense    bool
	Plan     bool
	Comm     bool
	Mem      bool
	Refl     bool
	Exec     bool
	Domain   string // application domain label
	Action   ActionType
	// ModelNote describes end-to-end systems (which have no module split).
	ModelNote string
}

// Taxonomy reproduces the paper's Table I: 42 embodied AI agent systems in
// four paradigms with their computing-module compositions.
var Taxonomy = []TaxonomyEntry{
	// Single-agent, modularized paradigm.
	{Name: "Mobile-Agent", Paradigm: SingleModular, Sense: true, Plan: true, Refl: true, Exec: true, Domain: "Device Control", Action: Tool},
	{Name: "AppAgent", Paradigm: SingleModular, Sense: true, Plan: true, Exec: true, Domain: "Device Control", Action: Tool},
	{Name: "PDDL", Paradigm: SingleModular, Plan: true, Refl: true, Domain: "Simulation", Action: Virtual},
	{Name: "RoboGPT", Paradigm: SingleModular, Sense: true, Plan: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "VOYAGER", Paradigm: SingleModular, Plan: true, Mem: true, Refl: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "MP5", Paradigm: SingleModular, Sense: true, Plan: true, Refl: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "RILA", Paradigm: SingleModular, Sense: true, Plan: true, Mem: true, Refl: true, Exec: true, Domain: "Navigation", Action: Virtual},
	{Name: "CRADLE", Paradigm: SingleModular, Sense: true, Plan: true, Mem: true, Refl: true, Exec: true, Domain: "Device Control", Action: Tool},
	{Name: "STEVE", Paradigm: SingleModular, Sense: true, Plan: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "DEPS", Paradigm: SingleModular, Sense: true, Plan: true, Refl: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "JARVIS-1", Paradigm: SingleModular, Sense: true, Plan: true, Mem: true, Refl: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "FILM", Paradigm: SingleModular, Sense: true, Plan: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "LLM-Planner", Paradigm: SingleModular, Plan: true, Refl: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "EmbodiedGPT", Paradigm: SingleModular, Sense: true, Plan: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "Dadu-E", Paradigm: SingleModular, Sense: true, Plan: true, Mem: true, Refl: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "MINEDOJO", Paradigm: SingleModular, Sense: true, Plan: true, Mem: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "Luban", Paradigm: SingleModular, Sense: true, Plan: true, Mem: true, Refl: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "MetaGPT", Paradigm: SingleModular, Plan: true, Comm: true, Mem: true, Refl: true, Exec: true, Domain: "Programming", Action: Tool},
	{Name: "Mobile-Agent-V2", Paradigm: SingleModular, Sense: true, Plan: true, Mem: true, Refl: true, Exec: true, Domain: "Device Control", Action: Tool},
	// Single-agent, end-to-end paradigm.
	{Name: "RT-2", Paradigm: EndToEnd, ModelNote: "Vision-Language-Action Model", Domain: "Robot Control", Action: Physical},
	{Name: "RoboVLMs", Paradigm: EndToEnd, ModelNote: "Vision-Language-Action Model", Domain: "Robot Control", Action: Physical},
	{Name: "GAIA-1", Paradigm: EndToEnd, ModelNote: "Generative World Model", Domain: "Autonomous Driving", Action: Physical},
	{Name: "3D-VLA", Paradigm: EndToEnd, ModelNote: "3D Vision-Language-Action Model", Domain: "Robot Control", Action: Physical},
	{Name: "Octo", Paradigm: EndToEnd, ModelNote: "Vision-Language Model + Exec Policy", Domain: "Robot Control", Action: Physical},
	{Name: "Diffusion Policy", Paradigm: EndToEnd, ModelNote: "Diffusion Policy", Domain: "Robot Control", Action: Physical},
	// Multi-agent, centralized paradigm.
	{Name: "LLaMAC", Paradigm: Centralized, Plan: true, Comm: true, Mem: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "MindAgent", Paradigm: Centralized, Plan: true, Comm: true, Mem: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "OLA", Paradigm: Centralized, Plan: true, Comm: true, Mem: true, Refl: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "ALGPT", Paradigm: Centralized, Sense: true, Plan: true, Comm: true, Mem: true, Exec: true, Domain: "Navigation", Action: Virtual},
	{Name: "CMAS", Paradigm: Centralized, Sense: true, Plan: true, Comm: true, Mem: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "ReAd", Paradigm: Centralized, Plan: true, Comm: true, Refl: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "Co-NavGPT", Paradigm: Centralized, Sense: true, Plan: true, Comm: true, Exec: true, Domain: "Navigation", Action: Virtual},
	{Name: "COHERENT", Paradigm: Centralized, Sense: true, Plan: true, Comm: true, Mem: true, Refl: true, Exec: true, Domain: "Simulation", Action: Virtual},
	// Multi-agent, decentralized paradigm.
	{Name: "DMAS", Paradigm: Decentralized, Sense: true, Plan: true, Comm: true, Mem: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "HMAS", Paradigm: Decentralized, Sense: true, Plan: true, Comm: true, Mem: true, Refl: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "AGA", Paradigm: Decentralized, Sense: true, Plan: true, Comm: true, Mem: true, Refl: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "CoELA", Paradigm: Decentralized, Sense: true, Plan: true, Comm: true, Mem: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "FMA", Paradigm: Decentralized, Plan: true, Comm: true, Mem: true, Refl: true, Exec: true, Domain: "Programming", Action: Tool},
	{Name: "COMBO", Paradigm: Decentralized, Sense: true, Plan: true, Comm: true, Mem: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "RoCo", Paradigm: Decentralized, Sense: true, Plan: true, Comm: true, Mem: true, Refl: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "AgentVerse", Paradigm: Decentralized, Plan: true, Comm: true, Exec: true, Domain: "Simulation", Action: Virtual},
	{Name: "KoMA", Paradigm: Decentralized, Plan: true, Comm: true, Mem: true, Refl: true, Exec: true, Domain: "Simulation", Action: Virtual},
}

// RenderTaxonomy formats Table I as an aligned text table.
func RenderTaxonomy() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-17s %-15s %-5s %-5s %-5s %-5s %-5s %-5s %-20s %s\n",
		"System", "Paradigm", "Sense", "Plan", "Comm", "Mem", "Refl", "Exec", "Domain", "Action")
	mark := func(v bool) string {
		if v {
			return "yes"
		}
		return "-"
	}
	for _, e := range Taxonomy {
		if e.Paradigm == EndToEnd {
			fmt.Fprintf(&b, "%-17s %-15s %-37s %-20s %s\n",
				e.Name, e.Paradigm, e.ModelNote, e.Domain, e.Action)
			continue
		}
		fmt.Fprintf(&b, "%-17s %-15s %-5s %-5s %-5s %-5s %-5s %-5s %-20s %s\n",
			e.Name, e.Paradigm,
			mark(e.Sense), mark(e.Plan), mark(e.Comm), mark(e.Mem), mark(e.Refl), mark(e.Exec),
			e.Domain, e.Action)
	}
	return b.String()
}

// RenderSuite formats Table II: the fourteen benchmarked workloads with
// their module backends.
func RenderSuite() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %-11s %-12s %-12s %-12s %-8s %-12s %s\n",
		"Workload", "Paradigm", "Env", "Sensing", "Planning", "Comm", "Memory", "Reflection", "Agents")
	for _, name := range SuiteNames {
		w := Suite[name]
		sense, comm, refl, mem := "-", "-", "-", "-"
		if w.Config.Sensing != nil {
			sense = w.Config.Sensing.Name
		}
		if w.Config.Comms != nil {
			comm = w.Config.Comms.Name
		}
		if w.Config.Reflector != nil {
			refl = w.Config.Reflector.Name
		}
		if w.Config.Memory.Capacity != 0 || w.Config.Memory.Dual {
			mem = fmt.Sprintf("%d-step", w.Config.Memory.Capacity)
		}
		fmt.Fprintf(&b, "%-12s %-14s %-11s %-12s %-12s %-12s %-8s %-12s %d\n",
			w.Name, w.Paradigm, w.EnvName, sense, w.Config.Planner.Name, comm, mem, refl, w.DefaultAgents)
	}
	return b.String()
}
