package bench

import (
	"fmt"
	"strings"

	"embench/internal/core"
	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/world"
)

// Ablation names the Fig. 3 module-sensitivity variants.
type Ablation string

// The five Fig. 3 configurations.
const (
	Full   Ablation = "full"
	NoComm Ablation = "w/o communication"
	NoMem  Ablation = "w/o memory"
	NoRefl Ablation = "w/o reflection"
	NoExec Ablation = "w/o execution"
)

// Ablations lists the Fig. 3 variants in presentation order.
var Ablations = []Ablation{Full, NoComm, NoMem, NoRefl, NoExec}

// Fig3Row is one (system, ablation) cell of Fig. 3.
type Fig3Row struct {
	System      string
	Ablation    Ablation
	Applicable  bool // the paper marks some cells "Not Applicable"
	SuccessRate float64
	MeanSteps   float64
	LimitRate   float64 // fraction of episodes hitting Lmax
}

// fig3Systems are the six systems the paper ablates.
var fig3Systems = []string{"CoELA", "COMBO", "COHERENT", "RoCo", "HMAS", "JARVIS-1"}

// Fig3 benchmarks module sensitivity: disable one module at a time and
// measure success rate and steps on medium tasks.
func Fig3(cfg Config) []Fig3Row {
	set := cfg.newBatchSet()
	var rows []Fig3Row
	ids := map[int]int{} // row index -> batch id
	for _, name := range fig3Systems {
		w := mustGet(name)
		for _, ab := range Ablations {
			mut, applicable := ablate(w.Config, ab)
			if applicable {
				ids[len(rows)] = set.add(w, world.Medium, 0, mut, multiagent.Options{})
			}
			rows = append(rows, Fig3Row{System: name, Ablation: ab, Applicable: applicable})
		}
	}
	set.run()
	for i := range rows {
		id, ok := ids[i]
		if !ok {
			continue
		}
		eps, _ := set.results(id)
		s := metrics.Summarize(eps)
		rows[i].SuccessRate = s.SuccessRate
		rows[i].MeanSteps = s.MeanSteps
		rows[i].LimitRate = s.LimitRate
	}
	return rows
}

// ablate builds the config mutation for an ablation, reporting false when
// the system lacks that module (the paper's "Not Applicable" cells).
func ablate(base core.AgentConfig, ab Ablation) (mutation, bool) {
	switch ab {
	case Full:
		return nil, true
	case NoComm:
		if base.Comms == nil {
			return nil, false
		}
		return func(c *core.AgentConfig) { c.Comms = nil }, true
	case NoMem:
		if base.Memory.Capacity == 0 && !base.Memory.Dual {
			return nil, false
		}
		return func(c *core.AgentConfig) { c.Memory = core.MemoryConfig{Capacity: 0} }, true
	case NoRefl:
		if base.Reflector == nil {
			return nil, false
		}
		return func(c *core.AgentConfig) { c.Reflector = nil }, true
	case NoExec:
		return func(c *core.AgentConfig) { c.Execution = false }, true
	}
	return nil, false
}

// AblationImpact aggregates Fig. 3 into the paper's headline multipliers:
// the mean steps ratio and success-rate drop (percentage points) of an
// ablation relative to the full system, over systems where it applies.
func AblationImpact(rows []Fig3Row, ab Ablation) (stepsRatio, successDropPts float64) {
	full := map[string]Fig3Row{}
	for _, r := range rows {
		if r.Ablation == Full {
			full[r.System] = r
		}
	}
	n := 0.0
	for _, r := range rows {
		if r.Ablation != ab || !r.Applicable {
			continue
		}
		f, ok := full[r.System]
		if !ok || f.MeanSteps == 0 {
			continue
		}
		stepsRatio += r.MeanSteps / f.MeanSteps
		successDropPts += metrics.Pts(f.SuccessRate, r.SuccessRate)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return stepsRatio / n, successDropPts / n
}

// RenderFig3 formats the sensitivity table.
func RenderFig3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Fig. 3 — module sensitivity (medium tasks)\n")
	fmt.Fprintf(&b, "%-10s %-19s %9s %8s %8s\n", "System", "Variant", "success", "steps", "@Lmax")
	for _, r := range rows {
		if !r.Applicable {
			fmt.Fprintf(&b, "%-10s %-19s %9s\n", r.System, r.Ablation, "n/a")
			continue
		}
		fmt.Fprintf(&b, "%-10s %-19s %8.0f%% %8.1f %7.0f%%\n",
			r.System, r.Ablation, 100*r.SuccessRate, r.MeanSteps, 100*r.LimitRate)
	}
	memRatio, memDrop := AblationImpact(rows, NoMem)
	reflRatio, reflDrop := AblationImpact(rows, NoRefl)
	fmt.Fprintf(&b, "w/o memory:     steps ×%.2f, success −%.1f pts (paper: ×1.61, −27.7)\n", memRatio, memDrop)
	fmt.Fprintf(&b, "w/o reflection: steps ×%.2f, success −%.1f pts (paper: ×1.88, −33.3)\n", reflRatio, reflDrop)
	return b.String()
}
