package tabletop

import (
	"fmt"
	"testing"

	"embench/internal/core"
	"embench/internal/geom"
	"embench/internal/modules/memory"
	"embench/internal/rng"
	"embench/internal/world"
)

func newTable(agents int, d world.Difficulty) *Table {
	return New(Config{Agents: agents, Difficulty: d}, rng.New(21))
}

func fullView(t2 *Table) []memory.Record {
	var recs []memory.Record
	for _, o := range t2.objects {
		recs = append(recs, memory.Record{
			Step: t2.Step(), Kind: memory.Observation, Key: fmt.Sprintf("obj:%d", o.id),
			Payload: ObjFact{ID: o.id, Pos: o.pos, Goal: o.goal, Delivered: o.delivered},
			Tokens:  objFactTokens,
		})
	}
	return recs
}

func TestConstructionFeasible(t *testing.T) {
	tb := newTable(2, world.Medium)
	if tb.Agents() != 2 || len(tb.objects) != 5 {
		t.Fatalf("agents=%d objects=%d", tb.Agents(), len(tb.objects))
	}
	for _, o := range tb.objects {
		if !tb.inSomeReach(o.pos) || !tb.inSomeReach(o.goal) {
			t.Fatalf("object %d or its goal is unreachable", o.id)
		}
		for _, obs := range tb.obstacles {
			if obs.Contains(o.pos) {
				t.Fatalf("object %d spawned inside an obstacle", o.id)
			}
		}
	}
}

func TestArmOverlapExists(t *testing.T) {
	tb := newTable(3, world.Easy)
	for a := 0; a+1 < tb.Agents(); a++ {
		if _, ok := tb.overlapPoint(a, a+1); !ok {
			t.Fatalf("adjacent arms %d,%d share no overlap", a, a+1)
		}
	}
	if _, ok := tb.overlapPoint(0, 0); ok {
		t.Fatal("self-overlap should be rejected")
	}
}

func TestExecuteMoveHappyPath(t *testing.T) {
	tb := newTable(2, world.Easy)
	// Find an object and the arm reaching both it and its goal — if none,
	// route via an overlap point first.
	for _, o := range tb.objects {
		for a := 0; a < tb.Agents(); a++ {
			if tb.InReach(a, o.pos) && tb.InReach(a, o.goal) {
				// Transfers are speed-limited: iterate until delivered.
				for i := 0; i < 12 && !o.delivered; i++ {
					res := tb.Execute(a, MoveObj{Obj: o.id, Pick: o.pos, Place: o.goal})
					if !res.Achieved {
						t.Fatalf("move failed: %s", res.Note)
					}
					if res.Effort.RRTSamples <= 0 {
						t.Fatal("RRT effort missing")
					}
				}
				if !o.delivered {
					t.Fatal("object not delivered after repeated moves")
				}
				return
			}
		}
	}
	t.Skip("no direct-reach pair in this instance")
}

func TestExecuteOutOfReachFails(t *testing.T) {
	tb := newTable(2, world.Easy)
	o := tb.objects[0]
	res := tb.Execute(0, MoveObj{Obj: o.id, Pick: o.pos, Place: geom.Pt(0.01, 0.99)})
	if res.Achieved {
		t.Fatal("placement outside reach should fail")
	}
}

func TestExecuteStalePickFails(t *testing.T) {
	tb := newTable(2, world.Easy)
	o := tb.objects[0]
	arm := tb.armCovering(o.pos)
	// Claim a pick point offset from the truth.
	wrong := geom.Pt(o.pos.X+0.1, o.pos.Y)
	if !tb.InReach(arm, wrong) {
		wrong = geom.Pt(o.pos.X-0.1, o.pos.Y)
	}
	if !tb.InReach(arm, wrong) {
		t.Skip("no reachable wrong point")
	}
	res := tb.Execute(arm, MoveObj{Obj: o.id, Pick: wrong, Place: wrong})
	if res.Achieved {
		t.Fatal("stale pick should fail")
	}
	if res.Effort.RRTSamples == 0 {
		t.Fatal("the wasted reach motion should still cost samples")
	}
}

func TestOracleSolvesMediumCentral(t *testing.T) {
	tb := newTable(3, world.Medium)
	steps := 0
	for !tb.Done() && steps < 150 {
		bel := tb.BuildBelief(core.CentralAgent, fullView(tb))
		joint := tb.ProposeJoint(bel).Good.(*core.Joint)
		for a := 0; a < tb.Agents(); a++ {
			tb.Execute(a, joint.Assign[a])
		}
		tb.Tick()
		steps++
	}
	if !tb.Success() {
		t.Fatalf("central oracle failed after %d steps (progress %.2f)", steps, tb.Progress())
	}
}

func TestOracleSolvesDecentralizedWithClaims(t *testing.T) {
	tb := newTable(2, world.Easy)
	steps := 0
	for !tb.Done() && steps < 100 {
		claims := map[int]int{}
		var goals [2]core.Subgoal
		for a := 0; a < 2; a++ {
			recs := fullView(tb)
			for agent, obj := range claims {
				recs = append(recs, memory.Record{
					Step: tb.Step(), Kind: memory.Dialogue, Key: fmt.Sprintf("claim:%d", agent),
					Payload: ClaimFact{Agent: agent, Object: obj}, Tokens: 6,
				})
			}
			prop := tb.Propose(a, tb.BuildBelief(a, recs))
			goals[a] = prop.Good
			if m, ok := prop.Good.(MoveObj); ok {
				claims[a] = m.Obj
			}
		}
		for a := 0; a < 2; a++ {
			tb.Execute(a, goals[a])
		}
		tb.Tick()
		steps++
	}
	if !tb.Success() {
		t.Fatalf("decentralized oracle failed (progress %.2f)", tb.Progress())
	}
}

func TestHandoverAcrossArms(t *testing.T) {
	// Heterogeneous arms: force an object whose pick and goal belong to
	// different arms, and verify the oracle plans a handover chain that
	// eventually delivers it.
	tb := New(Config{Agents: 2, Difficulty: world.Easy, Objects: 1}, rng.New(33))
	o := tb.objects[0]
	// Put the object deep in arm 0's zone and the goal deep in arm 1's.
	o.pos = geom.Pt(tb.arms[0].base.X-0.2, 0.5)
	o.goal = geom.Pt(tb.arms[1].base.X+0.2, 0.5)
	o.delivered = false
	steps := 0
	for !tb.Done() && steps < 30 {
		for a := 0; a < 2; a++ {
			prop := tb.Propose(a, tb.BuildBelief(a, fullView(tb)))
			tb.Execute(a, prop.Good)
		}
		tb.Tick()
		steps++
	}
	if !tb.Success() {
		t.Fatalf("handover chain failed after %d steps; obj at %v goal %v",
			steps, tb.ObjectPos(0), o.goal)
	}
}

func TestObserveRangeLimited(t *testing.T) {
	tb := newTable(2, world.Hard)
	for a := 0; a < 2; a++ {
		for _, r := range tb.Observe(a).Records {
			f := r.Payload.(ObjFact)
			if geom.Dist(tb.arms[a].base, f.Pos) > tb.arms[a].reach*senseMult+1e-9 {
				t.Fatalf("arm %d saw object %d beyond sensing range", a, f.ID)
			}
		}
	}
}

func TestBeliefStalenessAfterTeammateMove(t *testing.T) {
	tb := newTable(2, world.Easy)
	recs := fullView(tb)
	// Arm moves its nearest object somewhere else.
	var moved bool
	for _, o := range tb.objects {
		a := tb.armCovering(o.pos)
		if a < 0 {
			continue
		}
		if via, ok := tb.overlapPoint(0, 1); ok && tb.InReach(a, via) {
			if tb.Execute(a, MoveObj{Obj: o.id, Pick: o.pos, Place: via}).Achieved {
				moved = true
				break
			}
		}
	}
	if !moved {
		t.Skip("no movable object toward overlap in this instance")
	}
	bel := tb.BuildBelief(0, recs)
	if bel.Staleness == 0 {
		t.Fatal("old records should be stale after the move")
	}
}

func TestProposeIdleWithoutKnowledge(t *testing.T) {
	tb := newTable(2, world.Easy)
	prop := tb.Propose(0, tb.BuildBelief(0, nil))
	if _, ok := prop.Good.(Idle); !ok {
		t.Fatalf("blank belief should idle, got %s", prop.Good.Describe())
	}
}

func TestCorruptionsDistinct(t *testing.T) {
	tb := newTable(2, world.Medium)
	prop := tb.Propose(0, tb.BuildBelief(0, fullView(tb)))
	for _, c := range prop.Corruptions {
		if c.ID() == prop.Good.ID() {
			t.Fatal("corruption duplicates good decision")
		}
	}
	if len(prop.Corruptions) == 0 {
		t.Fatal("no corruptions offered")
	}
}

func TestHeterogeneousReaches(t *testing.T) {
	tb := New(Config{Agents: 3, Difficulty: world.Easy, Reaches: []float64{0.45, 0.3, 0.38}}, rng.New(2))
	if tb.arms[0].reach != 0.45 || tb.arms[1].reach != 0.3 || tb.arms[2].reach != 0.38 {
		t.Fatal("per-arm reaches not applied")
	}
}
