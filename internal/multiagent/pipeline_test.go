package multiagent

import (
	"reflect"
	"testing"
	"time"

	"embench/internal/env/boxworld"
	"embench/internal/rng"
	"embench/internal/serve"
	"embench/internal/serve/obs"
	"embench/internal/trace"
	"embench/internal/world"
)

func pipelineServe() serve.Config {
	return serve.Config{
		Replicas: 1, MaxBatch: 4, MaxWait: 1500 * time.Millisecond, CacheEntries: 64,
	}
}

func pipelineRun(pipe bool, sink obs.Sink) Outcome {
	d := boxworld.New(boxworld.Config{Agents: 3, Difficulty: world.Easy}, rng.New(17))
	sc := pipelineServe()
	return RunDecentralized(d, coelaCfg(), Options{
		Seed: 17, Parallel: true, Serve: &sc, Sink: sink, Pipeline: pipe,
	})
}

// decisions strips an event stream to its decision-relevant shape: what
// was called, in what order, with which tokens — everything except the
// virtual-time charges the pipeline is allowed to move.
func decisions(tr *trace.Trace) []trace.Event {
	out := make([]trace.Event, len(tr.Events))
	for i, ev := range tr.Events {
		ev.Latency = 0
		out[i] = ev
	}
	return out
}

// TestPipelineDecisionsUnchanged is the pipeline's core contract: overlap
// moves virtual time only. The same seed makes the same decisions, issues
// the same calls in the same order with the same token counts, and
// succeeds or fails identically. SimDuration must move (the credit
// applied) but its sign is not pinned here: earlier submissions reshape
// the shared endpoint's join windows, so contention can eat the saving.
func TestPipelineDecisionsUnchanged(t *testing.T) {
	off := pipelineRun(false, nil)
	on := pipelineRun(true, nil)
	if off.Episode.Steps != on.Episode.Steps || off.Episode.Success != on.Episode.Success ||
		off.Episode.LLMCalls != on.Episode.LLMCalls ||
		off.Episode.PromptTokens != on.Episode.PromptTokens ||
		off.Episode.OutputTokens != on.Episode.OutputTokens {
		t.Fatalf("pipeline changed decisions:\noff %+v\non  %+v", off.Episode, on.Episode)
	}
	if !reflect.DeepEqual(decisions(off.Trace), decisions(on.Trace)) {
		t.Fatal("pipeline changed the call sequence")
	}
	if on.Episode.SimDuration == off.Episode.SimDuration {
		t.Fatal("pipeline hid nothing; the overlap credit never applied")
	}
}

// TestPipelineFasterOnDedicatedServing: without a shared endpoint there
// is no contention feedback, so the overlap credit can only reduce
// charges — the pipelined run must be strictly faster and decide
// identically.
func TestPipelineFasterOnDedicatedServing(t *testing.T) {
	run := func(pipe bool) Outcome {
		d := boxworld.New(boxworld.Config{Agents: 3, Difficulty: world.Easy}, rng.New(17))
		return RunDecentralized(d, coelaCfg(), Options{Seed: 17, Parallel: true, Pipeline: pipe})
	}
	off, on := run(false), run(true)
	if !reflect.DeepEqual(decisions(off.Trace), decisions(on.Trace)) {
		t.Fatal("pipeline changed the call sequence on dedicated serving")
	}
	if on.Episode.SimDuration >= off.Episode.SimDuration {
		t.Fatalf("pipeline did not speed up dedicated serving: %v >= %v",
			on.Episode.SimDuration, off.Episode.SimDuration)
	}
}

// TestPipelinePerAgentArrivalsMonotone: the overlap credit reduces
// charges but never rewinds a clock, so each agent's endpoint submissions
// stay monotone in virtual time — an agent's own steps cannot reorder.
func TestPipelinePerAgentArrivalsMonotone(t *testing.T) {
	rec := obs.NewRecorder()
	pipelineRun(true, rec)
	last := map[string]time.Duration{}
	submits := 0
	for _, ev := range rec.Events() {
		if ev.Kind != obs.KindSubmit {
			continue
		}
		submits++
		if prev, ok := last[ev.Agent]; ok && ev.T < prev {
			t.Fatalf("agent %s submitted at %v after %v", ev.Agent, ev.T, prev)
		}
		last[ev.Agent] = ev.T
	}
	if submits == 0 {
		t.Fatal("no submissions recorded")
	}
}

// TestPipelineDeterministic: the overlapped run reproduces bit for bit.
func TestPipelineDeterministic(t *testing.T) {
	a, b := pipelineRun(true, nil), pipelineRun(true, nil)
	if !reflect.DeepEqual(a.Episode, b.Episode) {
		t.Fatalf("pipeline run not reproducible:\n%+v\n%+v", a.Episode, b.Episode)
	}
	if !reflect.DeepEqual(a.Trace.Events, b.Trace.Events) {
		t.Fatal("pipeline traces diverged")
	}
}

// TestPipelineOffIsSeedPath: Options.Pipeline false must leave every
// observable — including the endpoint submission timeline — identical to
// an Options value that never mentions the field.
func TestPipelineOffIsSeedPath(t *testing.T) {
	run := func(opt Options) (Outcome, []obs.Event) {
		d := boxworld.New(boxworld.Config{Agents: 3, Difficulty: world.Easy}, rng.New(17))
		rec := obs.NewRecorder()
		sc := pipelineServe()
		opt.Seed, opt.Parallel, opt.Serve, opt.Sink = 17, true, &sc, rec
		return RunDecentralized(d, coelaCfg(), opt), rec.Events()
	}
	base, baseEv := run(Options{})
	off, offEv := run(Options{Pipeline: false})
	if !reflect.DeepEqual(base.Episode, off.Episode) {
		t.Fatalf("Pipeline:false diverged from the zero value:\n%+v\n%+v",
			base.Episode, off.Episode)
	}
	if !reflect.DeepEqual(baseEv, offEv) {
		t.Fatal("Pipeline:false changed the recorded serving timeline")
	}
}
