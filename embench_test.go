package embench

import (
	"strings"
	"testing"
	"time"

	"embench/internal/serve"
)

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 14 {
		t.Fatalf("workloads = %d, want 14", len(ws))
	}
	if ws[0] != "EmbodiedGPT" || ws[13] != "HMAS" {
		t.Fatalf("unexpected ordering: %v", ws)
	}
}

func TestParseDifficulty(t *testing.T) {
	for _, s := range []string{"easy", "Medium", "HARD", ""} {
		if _, err := ParseDifficulty(s); err != nil {
			t.Errorf("ParseDifficulty(%q) = %v", s, err)
		}
	}
	if _, err := ParseDifficulty("impossible"); err == nil {
		t.Fatal("bad difficulty should error")
	}
}

func TestRun(t *testing.T) {
	out, err := Run("JARVIS-1", "easy", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Episode.Steps == 0 || out.Episode.SimDuration == 0 {
		t.Fatalf("empty episode: %+v", out.Episode)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("NotASystem", "easy", 0, 1); err == nil {
		t.Fatal("unknown workload should error")
	}
	if _, err := Run("CoELA", "nope", 0, 1); err == nil {
		t.Fatal("bad difficulty should error")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, _ := Run("CMAS", "easy", 2, 42)
	b, _ := Run("CMAS", "easy", 2, 42)
	if a.Episode.SimDuration != b.Episode.SimDuration || a.Episode.Steps != b.Episode.Steps {
		t.Fatal("same seed should reproduce the episode")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	want := []string{"calibrate", "fig10", "fig11", "fig12", "fig13", "fig14", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "opts", "table1", "table2"}
	if len(exps) != len(want) {
		t.Fatalf("experiments = %v", exps)
	}
	for i, e := range want {
		if exps[i] != e {
			t.Fatalf("experiments[%d] = %s, want %s", i, exps[i], e)
		}
	}
}

func TestExperimentTables(t *testing.T) {
	t1, err := Experiment("table1", 1, 1)
	if err != nil || !strings.Contains(t1, "RT-2") {
		t.Fatalf("table1: %v", err)
	}
	t2, err := Experiment("table2", 1, 1)
	if err != nil || !strings.Contains(t2, "CoELA") {
		t.Fatalf("table2: %v", err)
	}
}

func TestExperimentFig6Small(t *testing.T) {
	out, err := Experiment("fig6", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "token growth") {
		t.Fatalf("fig6 output unexpected:\n%s", out)
	}
}

func TestExperimentUnknown(t *testing.T) {
	if _, err := Experiment("fig99", 1, 1); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

// TestExperimentFig12InvalidConfig pins the validation surface the CLI
// leans on: bad fig12 axis values must error out of ExperimentFull with a
// clear message, never fall back to a default silently.
func TestExperimentFig12InvalidConfig(t *testing.T) {
	base := ExperimentConfig{Episodes: 1, Seed: 1}
	for name, cfg := range map[string]ExperimentConfig{
		"bad arrival":    {Episodes: 1, Seed: 1, Arrivals: []string{"poisson", "lumpy"}},
		"zero tenants":   {Episodes: 1, Seed: 1, Tenants: []int{8, 0}},
		"neg tenants":    {Episodes: 1, Seed: 1, Tenants: []int{-3}},
		"negative slo":   {Episodes: 1, Seed: 1, SLO: -time.Second},
		"bad autoscale":  {Episodes: 1, Seed: 1, Autoscale: "up=2"},
		"autoscale typo": {Episodes: 1, Seed: 1, Autoscale: "interval=abc"},
	} {
		if _, _, err := ExperimentFull("fig12", cfg); err == nil {
			t.Errorf("%s: ExperimentFull accepted %+v", name, cfg)
		}
	}
	// The valid spellings still run: restricted axes keep the test cheap.
	base.Arrivals = []string{"bursty"}
	base.Tenants = []int{4}
	base.SLO = 45 * time.Second
	base.Autoscale = "interval=20s,cold=5s,min=1"
	out, _, err := ExperimentFull("fig12", base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bursty") || !strings.Contains(out, "autoscaled") {
		t.Fatalf("fig12 output unexpected:\n%s", out)
	}
}

// TestParseHandoffSurface pins the -serve-handoff parsing surface the CLI
// leans on: empty/"off" mean a free handoff, valid specs round-trip, and
// malformed specs error instead of silently pricing the transfer at zero.
func TestParseHandoffSurface(t *testing.T) {
	for _, s := range []string{"", "off", "  off  "} {
		h, err := ParseHandoff(s)
		if err != nil || h != (HandoffCost{}) {
			t.Errorf("ParseHandoff(%q) = %+v, %v; want free handoff", s, h, err)
		}
	}
	h, err := ParseHandoff("lat=40ms,rate=200000")
	if err != nil || h.Latency != 40*time.Millisecond || h.TokensPerSec != 200000 {
		t.Fatalf("ParseHandoff(valid) = %+v, %v", h, err)
	}
	for _, s := range []string{"lat=-1s", "rate=-5", "lat=abc", "bw=9", "lat"} {
		if _, err := ParseHandoff(s); err == nil {
			t.Errorf("ParseHandoff(%q) accepted a malformed spec", s)
		}
	}
}

// TestServeConfigDisaggValidation pins the validation the CLI's
// -serve-prefill-*/-serve-decode-* flags run through (main.go calls
// ServeConfig.Validate before building an endpoint): half-configured or
// negative pool setups must be rejected with an error, never defaulted.
func TestServeConfigDisaggValidation(t *testing.T) {
	ok := ServeConfig{
		Prefill: serve.PoolConfig{Replicas: 2, MaxBatch: 4},
		Decode:  serve.PoolConfig{Replicas: 2, MaxBatch: 4},
		Handoff: HandoffCost{Latency: 10 * time.Millisecond, TokensPerSec: 1e5},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid disaggregated config rejected: %v", err)
	}
	for name, sc := range map[string]ServeConfig{
		"prefill only":         {Prefill: serve.PoolConfig{Replicas: 2}},
		"decode only":          {Decode: serve.PoolConfig{Replicas: 2}},
		"pools plus mono":      {Replicas: 2, Prefill: serve.PoolConfig{Replicas: 1}, Decode: serve.PoolConfig{Replicas: 1}},
		"negative prefill":     {Prefill: serve.PoolConfig{Replicas: -1}, Decode: serve.PoolConfig{Replicas: 2}},
		"negative decode wait": {Prefill: serve.PoolConfig{Replicas: 1}, Decode: serve.PoolConfig{Replicas: 1, MaxWait: -time.Second}},
		"negative handoff":     {Prefill: serve.PoolConfig{Replicas: 1}, Decode: serve.PoolConfig{Replicas: 1}, Handoff: HandoffCost{Latency: -time.Millisecond}},
	} {
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, sc)
		}
	}
}
