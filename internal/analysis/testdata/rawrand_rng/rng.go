// Fixture for the rawrand analyzer judged as embench/internal/rng itself:
// the one package allowed to touch math/rand, because it is the seam that
// wraps it into named seeded streams.
package fixture

import "math/rand"

// Stream hands out a deterministic generator; no finding anywhere in this
// package.
func Stream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
