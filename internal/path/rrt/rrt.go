// Package rrt implements rapidly-exploring random tree motion planning in a
// 2D workspace with circular obstacles — the low-level execution substrate
// of RoCo and COHERENT (paper Table II).
//
// The planner reports the number of samples drawn; the execution module
// converts that to simulated compute latency. RRT's heavy, variable compute
// is exactly why the paper measures execution at 49.4% of RoCo's per-step
// latency (Fig. 2a).
package rrt

import (
	"embench/internal/geom"
	"embench/internal/rng"
)

// Planner holds RRT parameters. The zero value is not useful; use New or
// fill every field.
type Planner struct {
	Step     float64 // extension step size
	GoalBias float64 // probability of sampling the goal directly
	MaxIter  int     // sample budget before giving up
	GoalTol  float64 // how close counts as reaching the goal
}

// New returns a planner with sensible defaults for a unit workspace.
func New() Planner {
	return Planner{Step: 0.05, GoalBias: 0.10, MaxIter: 4000, GoalTol: 0.03}
}

// Result is the outcome of a planning query.
type Result struct {
	Path    []geom.Point // start..goal inclusive; nil when not Found
	Samples int          // random samples drawn (compute cost proxy)
	Found   bool
}

// Plan grows a tree from start toward goal inside bounds, avoiding the
// obstacles, using stream for all randomness.
func (p Planner) Plan(start, goal geom.Point, bounds geom.Rect, obstacles []geom.Circle, stream *rng.Stream) Result {
	for _, o := range obstacles {
		if o.Contains(start) || o.Contains(goal) {
			return Result{}
		}
	}
	if geom.Dist(start, goal) <= p.GoalTol && geom.CollisionFree(start, goal, obstacles) {
		return Result{Path: []geom.Point{start, goal}, Samples: 1, Found: true}
	}
	nodes := []geom.Point{start}
	parent := []int{-1}
	for it := 0; it < p.MaxIter; it++ {
		var sample geom.Point
		if stream.Bernoulli(p.GoalBias) {
			sample = goal
		} else {
			sample = geom.Point{
				X: stream.Range(bounds.Min.X, bounds.Max.X),
				Y: stream.Range(bounds.Min.Y, bounds.Max.Y),
			}
		}
		ni := nearest(nodes, sample)
		next := geom.Toward(nodes[ni], sample, p.Step)
		if !bounds.Contains(next) || !geom.CollisionFree(nodes[ni], next, obstacles) {
			continue
		}
		nodes = append(nodes, next)
		parent = append(parent, ni)
		if geom.Dist(next, goal) <= p.GoalTol && geom.CollisionFree(next, goal, obstacles) {
			path := extract(nodes, parent, len(nodes)-1)
			path = append(path, goal)
			return Result{Path: Smooth(path, obstacles, stream, 30), Samples: it + 1, Found: true}
		}
	}
	return Result{Samples: p.MaxIter}
}

func nearest(nodes []geom.Point, q geom.Point) int {
	best, bestD := 0, geom.Dist(nodes[0], q)
	for i := 1; i < len(nodes); i++ {
		if d := geom.Dist(nodes[i], q); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func extract(nodes []geom.Point, parent []int, leaf int) []geom.Point {
	var rev []geom.Point
	for i := leaf; i != -1; i = parent[i] {
		rev = append(rev, nodes[i])
	}
	path := make([]geom.Point, len(rev))
	for i, p := range rev {
		path[len(rev)-1-i] = p
	}
	return path
}

// Smooth shortcut-optimizes a path: it repeatedly tries to connect two
// non-adjacent waypoints directly and drops the intermediate points when
// the shortcut is collision-free. attempts bounds the optimization effort.
func Smooth(path []geom.Point, obstacles []geom.Circle, stream *rng.Stream, attempts int) []geom.Point {
	if len(path) < 3 {
		return path
	}
	out := make([]geom.Point, len(path))
	copy(out, path)
	for a := 0; a < attempts && len(out) > 2; a++ {
		i := stream.Pick(len(out) - 2)
		j := i + 2 + stream.Pick(len(out)-i-2)
		if geom.CollisionFree(out[i], out[j], obstacles) {
			out = append(out[:i+1], out[j:]...)
		}
	}
	return out
}
