package serve

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"embench/internal/llm"
)

// TestParseAutoscale pins the CLI surface: accepted spellings and the
// zero-value-on-error contract.
func TestParseAutoscale(t *testing.T) {
	for _, s := range []string{"", "off"} {
		a, err := ParseAutoscale(s)
		if err != nil || a.enabled() {
			t.Fatalf("ParseAutoscale(%q) = %+v, %v; want disabled, nil", s, a, err)
		}
	}
	a, err := ParseAutoscale("on")
	if err != nil || !a.enabled() || a.Interval != 30*time.Second || a.ColdStart != 15*time.Second {
		t.Fatalf("ParseAutoscale(on) = %+v, %v", a, err)
	}
	a, err = ParseAutoscale("interval=10s,cold=5s,up=0.8,down=0.2,min=2,max=6")
	if err != nil {
		t.Fatalf("explicit spec: %v", err)
	}
	want := Autoscale{Interval: 10 * time.Second, ColdStart: 5 * time.Second,
		UpUtil: 0.8, DownUtil: 0.2, Min: 2, Max: 6}
	if a != want {
		t.Fatalf("explicit spec = %+v, want %+v", a, want)
	}
	for _, bad := range []string{
		"interval=abc", "up=2", "down=-1", "min=0", "bogus=1", "up", "cold=5s", // no interval
	} {
		a, err := ParseAutoscale(bad)
		if err == nil {
			t.Fatalf("ParseAutoscale(%q) accepted", bad)
		}
		if a != (Autoscale{}) {
			t.Fatalf("ParseAutoscale(%q) returned usable fallback %+v", bad, a)
		}
		if !strings.Contains(err.Error(), "autoscale") {
			t.Fatalf("ParseAutoscale(%q) error lacks context: %v", bad, err)
		}
	}
}

// TestAutoscaleDisabledDifferential is the satellite differential: a zero
// Autoscale must leave Replay byte-identical to a config that never heard
// of autoscaling, and an enabled-but-clamped policy (Min == Max, no cold
// start) must reproduce the fixed-replica schedule exactly — the
// bookkeeping may add its own counters, but completions, batches and every
// shared statistic must not move.
func TestAutoscaleDisabledDifferential(t *testing.T) {
	reqs := SharedPreambleTrace(8, 8, 3)
	base := Config{Profile: noJitter, Replicas: 4, MaxBatch: 4,
		MaxWait: time.Second, CacheEntries: 128, CacheTokens: 4096}
	withZero := base
	withZero.Autoscale = Autoscale{} // explicit zero — the disabled spelling
	a, b := Replay(base, reqs), Replay(withZero, reqs)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("zero Autoscale perturbed Replay output")
	}

	clamped := base
	clamped.Autoscale = Autoscale{Interval: 30 * time.Second, Min: 4, Max: 4}
	c := Replay(clamped, reqs)
	if !reflect.DeepEqual(a.Completions, c.Completions) {
		t.Fatal("clamped autoscaler (Min == Max == Replicas) changed the schedule")
	}
	if a.Batches != c.Batches || a.Makespan != c.Makespan {
		t.Fatalf("clamped autoscaler changed batches/makespan: %d/%v vs %d/%v",
			a.Batches, a.Makespan, c.Batches, c.Makespan)
	}
	if c.Stats.ScaleUps != 0 || c.Stats.ScaleDowns != 0 {
		t.Fatalf("clamped autoscaler scaled: %d up, %d down", c.Stats.ScaleUps, c.Stats.ScaleDowns)
	}
	if c.Stats.ReplicaTime != 4*c.Makespan {
		t.Fatalf("clamped ReplicaTime = %v, want %v", c.Stats.ReplicaTime, 4*c.Makespan)
	}
	if a.Stats.ReplicaTime != 0 {
		t.Fatalf("disabled path reports ReplicaTime %v, want 0", a.Stats.ReplicaTime)
	}
}

// burstTrace builds an idle-burst-idle trace: quiet singles, then a dense
// all-tenants burst, then quiet again — the shape that forces both a
// scale-up and later scale-downs.
func burstTrace() []Request {
	var reqs []Request
	add := func(at time.Duration, agent string) {
		reqs = append(reqs, Request{
			Agent: agent, Arrival: at,
			Prompt: sharedPrompt(agent, 60), OutTokens: 40,
		})
	}
	for i := 0; i < 4; i++ { // light warm-up: one request per 30s
		add(time.Duration(i)*30*time.Second, "quiet")
	}
	for i := 0; i < 40; i++ { // burst: 40 requests across 60s
		add(2*time.Minute+time.Duration(i)*1500*time.Millisecond, "burst")
	}
	for i := 0; i < 4; i++ { // cool-down stragglers
		add(8*time.Minute+time.Duration(i)*time.Minute, "quiet")
	}
	return reqs
}

// TestAutoscaleScalesUpAndDown drives the burst trace through an
// autoscaled replay and checks the policy actually moves in both
// directions, prices scale-down cache loss, and stays deterministic.
func TestAutoscaleScalesUpAndDown(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 6, MaxBatch: 2,
		MaxWait: 500 * time.Millisecond, CacheEntries: 128, CacheTokens: 2048,
		Autoscale: Autoscale{Interval: 15 * time.Second, ColdStart: 5 * time.Second,
			UpUtil: 0.6, DownUtil: 0.3, Min: 1},
	}
	res := Replay(cfg, burstTrace())
	if res.Stats.ScaleUps == 0 {
		t.Fatal("burst never triggered a scale-up")
	}
	if res.Stats.ScaleDowns == 0 {
		t.Fatal("idle tail never triggered a scale-down")
	}
	if res.Stats.EvictedTokens == 0 {
		t.Fatal("scale-down flushed no warm tokens (cache-loss pricing missing)")
	}
	if res.Stats.ReplicaTime <= 0 || res.Stats.ReplicaTime >= 6*res.Makespan {
		t.Fatalf("ReplicaTime = %v, want in (0, %v)", res.Stats.ReplicaTime, 6*res.Makespan)
	}
	if again := Replay(cfg, burstTrace()); !reflect.DeepEqual(res, again) {
		t.Fatal("autoscaled replay is not deterministic")
	}
}

// TestAutoscaleFleetDeadlockFree is the -race deadlock test: many episode
// goroutines hammer a shared autoscaled fleet (scale-downs happening while
// other episodes' requests are parked in the merge) and every request must
// complete.
func TestAutoscaleFleetDeadlockFree(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 4, MaxBatch: 4,
		MaxWait: time.Second, CacheEntries: 64,
		Autoscale: Autoscale{Interval: 10 * time.Second, ColdStart: 2 * time.Second,
			UpUtil: 0.5, DownUtil: 0.4, Min: 1},
	}
	const episodes, calls = 8, 30
	f := NewFleet(cfg, episodes)
	var wg sync.WaitGroup
	for i := 0; i < episodes; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := f.Client(id)
			defer c.Finish()
			at := time.Duration(id) * 3 * time.Second
			for n := 0; n < calls; n++ {
				s := c.Serve(llm.Call{
					Agent: "a", Arrival: at,
					Prompt: sharedPrompt("a", 40+n), OutTokens: 30,
				})
				// Idle gaps between calls give the evaluation clock room to
				// scale down while other episodes still have queued work.
				at += s.Latency + time.Duration(1+n%5)*7*time.Second
			}
		}(i)
	}
	wg.Wait()
	if got := f.Stats().Requests; got != episodes*calls {
		t.Fatalf("served %d requests, want %d", got, episodes*calls)
	}
}

// TestShardedFleetAutoscales checks the policy rides Config into every
// shard and the shard rollup merges the new fields.
func TestShardedFleetAutoscales(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 2, MaxBatch: 2, CacheEntries: 64,
		Autoscale: Autoscale{Interval: 20 * time.Second, Min: 1}}
	sf := NewShardedFleet(cfg, 4, 2)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := sf.Client(id)
			defer c.Finish()
			at := time.Duration(id) * 2 * time.Second
			for n := 0; n < 10; n++ {
				s := c.Serve(llm.Call{Agent: "a", Arrival: at,
					Prompt: sharedPrompt("a", 30), OutTokens: 20})
				at += s.Latency + 25*time.Second
			}
		}(i)
	}
	wg.Wait()
	if got := sf.Stats().Requests; got != 40 {
		t.Fatalf("served %d requests, want 40", got)
	}
	if sf.Stats().QueueWaitHist.Total() == 0 {
		t.Fatal("shard rollup dropped the queue-wait histogram")
	}
}
