// Fixture for the wallclock analyzer. Simulation code must run on virtual
// time; the only sanctioned wall-clock reads are annotated harness-timing
// sites.
package fixture

import (
	"time"

	wall "time"
)

// latency prices a request off the machine clock: runs stop being
// reproducible.
func latency() time.Duration {
	start := time.Now() // want `time\.Now reads the wall clock`
	return elapsed(start)
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// throttle stalls the simulator on real time.
func throttle() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

// aliased imports do not dodge the check: resolution is type-based.
func aliased() wall.Time {
	return wall.Now() // want `time\.Now reads the wall clock`
}

// units are values, not clock reads: no finding.
func window() time.Duration {
	return 1500 * time.Millisecond
}

// benchStamp is the sanctioned shape: genuine harness wall-timing, with
// the annotation carrying the reason.
func benchStamp() time.Duration {
	start := time.Now() //detlint:allow wallclock harness wall-timing of a figure regeneration, never part of simulated state
	//detlint:allow wallclock harness wall-timing, paired with the stamp above
	return time.Since(start)
}
