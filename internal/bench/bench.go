// Package bench regenerates every table and figure of the paper's
// evaluation: per-module latency breakdowns (Fig. 2), module-sensitivity
// ablations (Fig. 3), local-vs-API model comparison (Fig. 4), memory
// capacity sweeps (Fig. 5), prompt-token growth (Fig. 6), multi-agent
// scalability (Fig. 7), and the optimization-recommendation ablations of
// Secs. IV–VI. Absolute numbers come from the calibrated simulation
// substrate; the paper's qualitative shapes are asserted in tests and the
// measured-vs-paper comparison lives in EXPERIMENTS.md.
//
// All episode batches flow through internal/runner, so a run with
// Config.Parallelism > 1 fans episodes out over a worker pool while
// reproducing the sequential results bit for bit (seed derivation and
// result ordering are the runner's responsibility).
package bench

import (
	"context"
	"time"

	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/runner"
	"embench/internal/serve"
	"embench/internal/systems"
	"embench/internal/trace"
	"embench/internal/world"
)

// Config sizes an experiment run.
type Config struct {
	Episodes int    // episodes per configuration (default 5)
	Seed     uint64 // root seed
	// Parallelism is the episode worker-pool size; <= 1 runs batches
	// sequentially. Results are identical at any value.
	Parallelism int
	// FleetSizes overrides fig10's fleet-size axis (nil = the default
	// ladder, Fig10FleetSizes). CI uses a reduced axis; the recorded
	// trajectory runs the full one.
	FleetSizes []int
	// FleetShards overrides fig10's shard axis (nil = Fig10Shards).
	FleetShards []int
	// Arrivals overrides fig12's arrival-process axis (nil = all three:
	// poisson, bursty, diurnal).
	Arrivals []serve.ArrivalKind
	// Tenants overrides fig12's tenant-count axis (nil = Fig12Tenants).
	Tenants []int
	// SLO overrides fig12's end-to-end latency target (0 = Fig12SLO).
	SLO time.Duration
	// Autoscale overrides fig12's autoscaled-deployment policy (zero =
	// fig12Autoscale defaults).
	Autoscale serve.Autoscale
}

func (c Config) episodes() int {
	if c.Episodes <= 0 {
		return 5
	}
	return c.Episodes
}

// mutation rewrites a workload's agent configuration for an ablation.
type mutation = runner.Mutation

// batch runs the episodes of one configuration through the episode runner
// and returns per-episode results with their traces, in episode order.
func (c Config) batch(w systems.Workload, diff world.Difficulty, agents int,
	mut mutation, opt multiagent.Options) ([]metrics.Episode, []*trace.Trace) {

	eps, traces, err := runner.Batch(context.Background(), w, diff, agents,
		mut, opt, c.episodes(), c.Seed, c.Parallelism)
	if err != nil {
		// Background context never cancels and episodes cannot fail.
		panic("bench: runner batch: " + err.Error())
	}
	return eps, traces
}

// batchSet accumulates the episode batches of many configurations and runs
// them as one fan-out, so an experiment parallelizes across configurations
// rather than only within each one's few episodes. Usage is two-phase:
// add() every configuration (recording the returned batch id), run() once,
// then read each batch back with results().
type batchSet struct {
	cfg    Config
	specs  []runner.EpisodeSpec
	starts []int
	eps    []metrics.Episode
	traces []*trace.Trace
}

func (c Config) newBatchSet() *batchSet { return &batchSet{cfg: c} }

// add appends one configuration's batch (cfg.episodes() episodes rooted at
// cfg.Seed, matching the sequential scheme) and returns its batch id.
func (s *batchSet) add(w systems.Workload, diff world.Difficulty, agents int,
	mut mutation, opt multiagent.Options) int {
	return s.addN(w, diff, agents, mut, opt, s.cfg.episodes())
}

// addN is add with an explicit episode count (Fig. 6 runs single episodes).
func (s *batchSet) addN(w systems.Workload, diff world.Difficulty, agents int,
	mut mutation, opt multiagent.Options, episodes int) int {

	s.starts = append(s.starts, len(s.specs))
	s.specs = append(s.specs, runner.Specs(w, diff, agents, mut, opt, episodes, s.cfg.Seed)...)
	return len(s.starts) - 1
}

// run executes every added batch over the configured worker pool.
func (s *batchSet) run() {
	eps, traces, err := runner.Run(context.Background(), s.specs, s.cfg.Parallelism)
	if err != nil {
		panic("bench: runner set: " + err.Error())
	}
	s.eps, s.traces = eps, traces
}

// results returns one batch's episodes and traces, in episode order.
func (s *batchSet) results(id int) ([]metrics.Episode, []*trace.Trace) {
	start, end := s.starts[id], len(s.specs)
	if id+1 < len(s.starts) {
		end = s.starts[id+1]
	}
	return s.eps[start:end], s.traces[start:end]
}

// kindShare reports the latency fraction spent in events of the given
// kind prefix across traces (e.g. CoELA's "message"/"plan"/"act-select"
// split, paper Sec. IV-A).
func kindShare(traces []*trace.Trace, kind string) float64 {
	var total, match float64
	for _, tr := range traces {
		for _, ev := range tr.Events {
			total += ev.Latency.Seconds()
			if ev.Kind == kind || (len(ev.Kind) > len(kind) && ev.Kind[:len(kind)] == kind) {
				match += ev.Latency.Seconds()
			}
		}
	}
	if total == 0 {
		return 0
	}
	return match / total
}

// mustGet resolves a workload or panics — experiment tables are static.
func mustGet(name string) systems.Workload {
	w, ok := systems.Get(name)
	if !ok {
		panic("bench: unknown workload " + name)
	}
	return w
}
