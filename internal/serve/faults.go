package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"embench/internal/rng"
	"embench/internal/serve/obs"
)

// This file is the failure model: seeded per-replica crash-restart and
// straggler processes (Faults), the client-resilience policies replayed
// against them (RetryPolicy, HedgePolicy, ShedPolicy), and the endpoint
// machinery that applies scheduled faults to replica timelines.
//
// Fault schedules are drawn from named RNG streams in the GenerateTraffic
// style — one stream per replica index, rooted at Faults.Seed — so a
// schedule is byte-reproducible per seed and INDEPENDENT of traffic: adding
// tenants, changing arrival processes or swapping routing policies cannot
// move a crash. That independence is also what makes closed-loop fault
// injection tractable: the schedule is known a priori, so a batch admission
// can check synchronously whether its service span [start, end) contains a
// crash, fail the batch at the crash instant, and re-enter its requests
// into admission — no speculative execution to unwind, and by induction no
// committed batch ever spans a crash.
//
// The zero Faults value disables everything: Endpoint.fx stays nil, every
// serving-path hook below is guarded on it, and the disabled path is
// byte-identical to fault-free builds (goldens, JSONL, allocations).

// Faults configures deterministic fault injection for an endpoint's
// replicas. Two independent processes per replica:
//
//   - Crash-restart: alternating up ~ Exp(MTBF) and down ~ Exp(MTTR)
//     phases. A crash kills the replica's in-flight batch (its requests
//     re-enter admission), destroys the replica's prefix/KV cache (the
//     restart comes back cold, the lost warm tokens priced through the
//     eviction accounting like any capacity flush), and parks the replica
//     until the repair window ends. Routing avoids down replicas; the
//     autoscaler never retires one (a down replica is not idle).
//   - Straggler episodes: alternating gap ~ Exp(StragglerEvery) and length
//     ~ Exp(StragglerFor) windows during which every batch STARTING on the
//     replica pays StragglerFactor × its service time (transient slowdown:
//     thermal throttling, a noisy neighbor, a failing NIC).
type Faults struct {
	// MTBF is the mean up-phase length (mean time between failures) per
	// replica; <= 0 disables the crash process.
	MTBF time.Duration
	// MTTR is the mean repair-window length (default 30s when crashes are
	// enabled).
	MTTR time.Duration
	// StragglerEvery is the mean gap between straggler episodes; <= 0
	// disables the straggler process.
	StragglerEvery time.Duration
	// StragglerFor is the mean episode length (default 30s when stragglers
	// are enabled).
	StragglerFor time.Duration
	// StragglerFactor multiplies the service time of batches starting
	// inside an episode (default 3; must be >= 1).
	StragglerFactor float64
	// Seed roots the fault schedules. It is deliberately separate from the
	// traffic seed: faults are a property of the hardware, not the workload.
	Seed uint64
}

// enabled reports whether any fault process is active.
func (f Faults) enabled() bool { return f.MTBF > 0 || f.StragglerEvery > 0 }

// withDefaults fills zero fields of the enabled processes.
func (f Faults) withDefaults() Faults {
	if f.MTBF > 0 && f.MTTR <= 0 {
		f.MTTR = 30 * time.Second
	}
	if f.StragglerEvery > 0 {
		if f.StragglerFor <= 0 {
			f.StragglerFor = 30 * time.Second
		}
		if f.StragglerFactor < 1 {
			f.StragglerFactor = 3
		}
	}
	return f
}

// validate rejects field values that cannot describe a fault process.
func (f Faults) validate() error {
	if f.MTBF < 0 || f.MTTR < 0 || f.StragglerEvery < 0 || f.StragglerFor < 0 {
		return fmt.Errorf("serve: fault durations must be >= 0")
	}
	if f.StragglerFactor != 0 && f.StragglerFactor < 1 {
		return fmt.Errorf("serve: straggler factor must be >= 1, got %v", f.StragglerFactor)
	}
	return nil
}

// ParseFaults converts a CLI/config string into a Faults config. Accepted
// forms, following ParseAutoscale:
//
//	""       disabled (the zero config)
//	"off"    disabled
//	"on"     the default crash process (mtbf=5m,mttr=30s)
//	"k=v,.." explicit fields: mtbf=DUR, mttr=DUR, straggle=DUR (mean gap
//	         between straggler episodes), for=DUR (mean episode length),
//	         slow=FLOAT (straggler service multiplier), seed=UINT
//
// The returned config is the zero value on error — not a usable fallback —
// so a caller that drops the error cannot silently run fault-free where the
// user asked for faults.
func ParseFaults(s string) (Faults, error) {
	switch s {
	case "", "off":
		return Faults{}, nil
	case "on":
		return Faults{MTBF: 5 * time.Minute, MTTR: 30 * time.Second}, nil
	}
	var f Faults
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Faults{}, fmt.Errorf("serve: bad faults field %q (want key=value; off|on|mtbf=DUR,mttr=DUR,straggle=DUR,for=DUR,slow=F,seed=N)", part)
		}
		switch k {
		case "mtbf", "mttr", "straggle", "for":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return Faults{}, fmt.Errorf("serve: bad faults %s %q (want a non-negative duration like 5m)", k, v)
			}
			switch k {
			case "mtbf":
				f.MTBF = d
			case "mttr":
				f.MTTR = d
			case "straggle":
				f.StragglerEvery = d
			case "for":
				f.StragglerFor = d
			}
		case "slow":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil || x < 1 {
				return Faults{}, fmt.Errorf("serve: bad faults slow %q (want a factor >= 1)", v)
			}
			f.StragglerFactor = x
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Faults{}, fmt.Errorf("serve: bad faults seed %q (want an unsigned integer)", v)
			}
			f.Seed = n
		default:
			return Faults{}, fmt.Errorf("serve: unknown faults field %q (mtbf|mttr|straggle|for|slow|seed)", k)
		}
	}
	if !f.enabled() {
		return Faults{}, fmt.Errorf("serve: faults spec %q enables nothing (set mtbf=DUR or straggle=DUR, or use \"on\")", s)
	}
	return f, nil
}

// RetryPolicy re-issues a replayed request after a deadline timeout:
// exponential backoff with seeded jitter, bounded by a per-request budget.
// The zero value disables retries. Client resilience acts in open-loop
// replay (serve.Replay — the front-door model); closed-loop episode serving
// resolves calls synchronously and is covered by server-side crash
// re-admission instead.
type RetryPolicy struct {
	// Max is the per-request retry budget; <= 0 disables retries.
	Max int
	// Base is the first backoff delay (default 500ms).
	Base time.Duration
	// Factor multiplies the backoff per attempt (default 2).
	Factor float64
	// Jitter scales each backoff by a seeded uniform factor in
	// [1, 1+Jitter); 0 means deterministic un-jittered backoff.
	Jitter float64
}

// enabled reports whether the policy does anything.
func (p RetryPolicy) enabled() bool { return p.Max > 0 }

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if !p.enabled() {
		return RetryPolicy{}
	}
	if p.Base <= 0 {
		p.Base = 500 * time.Millisecond
	}
	if p.Factor <= 0 {
		p.Factor = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// backoff prices the delay before retry number k (0-based), drawing jitter
// from the request's own stream so retry schedules are independent across
// requests and byte-reproducible per seed.
func (p RetryPolicy) backoff(k int, st *rng.Stream) time.Duration {
	d := float64(p.Base)
	for i := 0; i < k; i++ {
		d *= p.Factor
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*st.Float64()
	}
	return time.Duration(d)
}

// ParseRetry converts a CLI/config string into a RetryPolicy: ""/"off"
// disabled, "on" the default policy (max=2,base=500ms,factor=2,jitter=0.2),
// or explicit max=N,base=DUR,factor=F,jitter=F fields. Zero value on error.
func ParseRetry(s string) (RetryPolicy, error) {
	switch s {
	case "", "off":
		return RetryPolicy{}, nil
	case "on":
		return RetryPolicy{Max: 2, Jitter: 0.2}, nil
	}
	var p RetryPolicy
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return RetryPolicy{}, fmt.Errorf("serve: bad retry field %q (want key=value; off|on|max=N,base=DUR,factor=F,jitter=F)", part)
		}
		switch k {
		case "max":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return RetryPolicy{}, fmt.Errorf("serve: bad retry max %q (want a positive integer)", v)
			}
			p.Max = n
		case "base":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return RetryPolicy{}, fmt.Errorf("serve: bad retry base %q (want a positive duration)", v)
			}
			p.Base = d
		case "factor":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil || x <= 0 {
				return RetryPolicy{}, fmt.Errorf("serve: bad retry factor %q (want > 0)", v)
			}
			p.Factor = x
		case "jitter":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil || x < 0 {
				return RetryPolicy{}, fmt.Errorf("serve: bad retry jitter %q (want >= 0)", v)
			}
			p.Jitter = x
		default:
			return RetryPolicy{}, fmt.Errorf("serve: unknown retry field %q (max|base|factor|jitter)", k)
		}
	}
	if p.Max < 1 {
		return RetryPolicy{}, fmt.Errorf("serve: retry spec %q needs max=N >= 1 (or use \"on\")", s)
	}
	return p, nil
}

// HedgePolicy issues a duplicate copy of a replayed request that has waited
// Delay without completing; the first completion wins and the loser is
// cancelled (free if still queued, priced as wasted service if its batch
// already launched). The zero value disables hedging.
type HedgePolicy struct {
	// Delay is how long a request may remain incomplete before its hedge
	// enters admission; <= 0 disables hedging.
	Delay time.Duration
}

// enabled reports whether the policy does anything.
func (p HedgePolicy) enabled() bool { return p.Delay > 0 }

// ParseHedge converts a CLI/config string into a HedgePolicy: ""/"off"
// disabled, "on" the default (delay=2s), or delay=DUR. Zero value on error.
func ParseHedge(s string) (HedgePolicy, error) {
	switch s {
	case "", "off":
		return HedgePolicy{}, nil
	case "on":
		return HedgePolicy{Delay: 2 * time.Second}, nil
	}
	var p HedgePolicy
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok || k != "delay" {
			return HedgePolicy{}, fmt.Errorf("serve: bad hedge field %q (want off|on|delay=DUR)", part)
		}
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return HedgePolicy{}, fmt.Errorf("serve: bad hedge delay %q (want a positive duration)", v)
		}
		p.Delay = d
	}
	if p.Delay <= 0 {
		return HedgePolicy{}, fmt.Errorf("serve: hedge spec %q needs delay=DUR > 0 (or use \"on\")", s)
	}
	return p, nil
}

// ShedPolicy is priority-aware admission load shedding for replayed
// requests: an arriving request whose Priority is at or above the Priority
// floor is rejected — surfaced as a shed Completion, never silently
// dropped — when the admission queue is deeper than Queue entries or its
// oldest entry has waited at least Wait. The zero value disables shedding.
type ShedPolicy struct {
	// Queue sheds arrivals when the admission queue holds >= Queue
	// attempts; 0 disables the depth trigger.
	Queue int
	// Wait sheds arrivals when the oldest queued attempt has waited
	// >= Wait; 0 disables the wait trigger.
	Wait time.Duration
	// Priority is the lowest (most important) priority class that may be
	// shed: requests with Priority >= this are sheddable, lower classes are
	// always admitted. The default 0 sheds any class.
	Priority int
}

// enabled reports whether the policy does anything.
func (p ShedPolicy) enabled() bool { return p.Queue > 0 || p.Wait > 0 }

// ParseShed converts a CLI/config string into a ShedPolicy: ""/"off"
// disabled, "on" the default (queue=32), or queue=N,wait=DUR,prio=N fields.
// Zero value on error.
func ParseShed(s string) (ShedPolicy, error) {
	switch s {
	case "", "off":
		return ShedPolicy{}, nil
	case "on":
		return ShedPolicy{Queue: 32}, nil
	}
	var p ShedPolicy
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return ShedPolicy{}, fmt.Errorf("serve: bad shed field %q (want key=value; off|on|queue=N,wait=DUR,prio=N)", part)
		}
		switch k {
		case "queue":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return ShedPolicy{}, fmt.Errorf("serve: bad shed queue %q (want a positive integer)", v)
			}
			p.Queue = n
		case "wait":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return ShedPolicy{}, fmt.Errorf("serve: bad shed wait %q (want a positive duration)", v)
			}
			p.Wait = d
		case "prio":
			n, err := strconv.Atoi(v)
			if err != nil {
				return ShedPolicy{}, fmt.Errorf("serve: bad shed prio %q (want an integer)", v)
			}
			p.Priority = n
		default:
			return ShedPolicy{}, fmt.Errorf("serve: unknown shed field %q (queue|wait|prio)", k)
		}
	}
	if !p.enabled() {
		return ShedPolicy{}, fmt.Errorf("serve: shed spec %q enables nothing (set queue=N or wait=DUR, or use \"on\")", s)
	}
	return p, nil
}

// faultWindow is one scheduled down (or straggler) interval.
type faultWindow struct{ start, end time.Duration }

// faultClock is one replica's fault-schedule state: the crash stream with
// its generation frontier and not-yet-applied down windows, the straggler
// stream with its memoized episode windows, and the bookkeeping the serving
// path reads (downUntil for routing, batchFactor for join pricing).
type faultClock struct {
	st      *rng.Stream   // crash process (nil when crashes disabled)
	at      time.Duration // crash schedule generated through this time
	pending []faultWindow // generated down windows, consumed in order

	stragSt *rng.Stream   // straggler process (nil when disabled)
	stragAt time.Duration // straggler schedule generated through this time
	strag   []faultWindow // memoized episode windows (queried, never consumed)

	downUntil   time.Duration // end of the applied down window covering now
	batchFactor float64       // straggler factor of the in-flight batch (joins)
}

// faultState is an endpoint's fault machinery; nil when Faults is disabled.
type faultState struct {
	cfg    Faults
	clocks []faultClock
}

// newFaultState seeds one clock per pool replica. Stream names are indexed
// by replica slot, so replica i's schedule is independent of the pool size
// and of every other replica's.
func newFaultState(cfg Faults, replicas int) *faultState {
	fx := &faultState{cfg: cfg, clocks: make([]faultClock, replicas)}
	src := rng.New(cfg.Seed).Sub("serve/faults")
	for i := range fx.clocks {
		if cfg.MTBF > 0 {
			fx.clocks[i].st = src.NewStream(fmt.Sprintf("replica-%d", i))
		}
		if cfg.StragglerEvery > 0 {
			fx.clocks[i].stragSt = src.NewStream(fmt.Sprintf("straggler-%d", i))
		}
	}
	return fx
}

// faultDur is expDur clamped positive, guaranteeing schedule progress even
// on a zero-density draw.
func faultDur(st *rng.Stream, mean time.Duration) time.Duration {
	if d := expDur(st, mean); d > 0 {
		return d
	}
	return time.Nanosecond
}

// gen extends the crash schedule until its frontier passes t: every down
// window starting at or before t exists in pending afterwards.
func (c *faultClock) gen(cfg Faults, t time.Duration) {
	if c.st == nil {
		return
	}
	for c.at <= t {
		up := faultDur(c.st, cfg.MTBF)
		down := faultDur(c.st, cfg.MTTR)
		c.pending = append(c.pending, faultWindow{start: c.at + up, end: c.at + up + down})
		c.at += up + down
	}
}

// fxDown reports whether active replica i sits inside an applied crash
// window at virtual time t. Routing skips down replicas — they take no
// traffic until their restart — unless every candidate is down, in which
// case placement falls back to earliest availability (the restored freeAt).
func (e *Endpoint) fxDown(i int, t time.Duration) bool {
	return e.fx != nil && e.fx.clocks[i].downUntil > t
}

// applyFaults applies every crash window that has begun by virtual time t
// to the active replicas' timelines: seal and flush the cache (the restart
// is cold; the destroyed warm tokens are priced as capacity evictions),
// push freeAt past the repair window, accumulate ReplicaDowntime, and emit
// replica_down/replica_up. By induction no committed batch spans a crash
// (admissions check their span), so a window being applied always finds the
// replica idle — in-flight work was already failed at admission time.
func (e *Endpoint) applyFaults(t time.Duration) {
	for i := 0; i < e.active; i++ {
		c := &e.fx.clocks[i]
		if c.st == nil {
			continue
		}
		c.gen(e.fx.cfg, t)
		for len(c.pending) > 0 && c.pending[0].start <= t {
			w := c.pending[0]
			c.pending = c.pending[1:]
			e.crashReplica(&e.replicas[i], i, w, 0)
		}
	}
}

// crashReplica executes one crash window on a replica. killed is the number
// of in-flight sequences the crash destroyed (0 for an idle-replica crash);
// killed requests re-enter admission at the caller, so none are lost.
func (e *Endpoint) crashReplica(r *replica, ri int, w faultWindow, killed int) {
	e.sealFrontier(r)
	var live int
	if e.sink != nil {
		live, _, _ = r.cache.stats()
	}
	r.cache.flush()
	if r.freeAt < w.end {
		r.freeAt = w.end
	}
	e.fx.clocks[ri].downUntil = w.end
	e.stats.ReplicaDowntime += w.end - w.start
	if killed > 0 {
		e.stats.FailedBatches++
	}
	if e.sink != nil {
		e.sink.Event(obs.Event{
			Kind: obs.KindReplicaDown, T: w.start, Shard: e.shard, Replica: ri,
			Tokens: live, Batch: killed, Dur: w.end - w.start,
		})
		e.sink.Event(obs.Event{
			Kind: obs.KindReplicaUp, T: w.end, Shard: e.shard, Replica: ri,
		})
	}
}

// crashIn pops and returns the first scheduled crash window intersecting
// the batch span [start, end) on replica ri. The caller MUST apply a hit
// via crashReplica — the window is consumed. applyFaults has already run at
// the span's routing time, so pending windows never start before start.
func (e *Endpoint) crashIn(ri int, start, end time.Duration) (faultWindow, bool) {
	c := &e.fx.clocks[ri]
	if c.st == nil {
		return faultWindow{}, false
	}
	c.gen(e.fx.cfg, end)
	if len(c.pending) > 0 && c.pending[0].start < end {
		w := c.pending[0]
		c.pending = c.pending[1:]
		return w, true
	}
	return faultWindow{}, false
}

// crashWould reports, without consuming anything, whether a batch ending at
// end on replica ri would hit a scheduled crash. Join admissions probe with
// it before mutating the cache.
func (e *Endpoint) crashWould(ri int, end time.Duration) bool {
	c := &e.fx.clocks[ri]
	if c.st == nil {
		return false
	}
	c.gen(e.fx.cfg, end)
	return len(c.pending) > 0 && c.pending[0].start < end
}

// applyIdleCrashes applies every pending crash window on replica ri that
// opens before virtual time t: the replica is idle (or warming up) across
// [now, t), so each such window is an idle crash that pushes its
// availability back. Callers re-read r.freeAt afterwards — an applied
// window may move it past t.
func (e *Endpoint) applyIdleCrashes(r *replica, ri int, t time.Duration) {
	c := &e.fx.clocks[ri]
	if c.st == nil {
		return
	}
	for {
		c.gen(e.fx.cfg, t)
		if len(c.pending) == 0 || c.pending[0].start >= t {
			return
		}
		w := c.pending[0]
		c.pending = c.pending[1:]
		e.crashReplica(r, ri, w, 0)
		if r.freeAt > t {
			t = r.freeAt
		}
	}
}

// joinSafe reports whether joining the keyed request onto r's in-flight
// frontier batch keeps the extended batch clear of r's next scheduled
// crash. It previews the join's pricing without touching the cache (an
// insertion cannot change its own batch's service time), so refusing the
// join leaves no state to unwind — the request simply falls through to the
// new-batch path.
func (e *Endpoint) joinSafe(r *replica, k promptKey, out int) bool {
	ri := e.rindex(r)
	cached := r.cache.matchKey(k)
	eff := r.batchTok + e.discountedEff(cached, k.total)
	o := r.batchOut
	if out > o {
		o = out
	}
	svc := e.cfg.Profile.BatchServiceTime(r.batchN+1, eff, o)
	if f := e.fx.clocks[ri].batchFactor; f > 1 {
		svc = time.Duration(float64(svc) * f)
	}
	end := r.batchStart + svc
	if end < r.batchEnd {
		end = r.batchEnd
	}
	return !e.crashWould(ri, end)
}

// dropFaultsBefore discards crash windows that ended entirely while the
// replica was parked (autoscaler scale-up calls it on reactivation): a
// parked replica serves nothing, so downtime it slept through is neither
// counted nor applied. Windows overlapping the activation remain pending.
func (e *Endpoint) dropFaultsBefore(ri int, t time.Duration) {
	c := &e.fx.clocks[ri]
	if c.st == nil {
		return
	}
	c.gen(e.fx.cfg, t)
	for len(c.pending) > 0 && c.pending[0].end <= t {
		c.pending = c.pending[1:]
	}
}

// stragFactor reports the service-time multiplier for a batch STARTING on
// replica ri at virtual time t: StragglerFactor inside an episode window, 1
// outside. Windows are memoized per replica, so repeated queries (and the
// replay event loop's non-monotone probes) are pure lookups.
func (e *Endpoint) stragFactor(ri int, t time.Duration) float64 {
	c := &e.fx.clocks[ri]
	if c.stragSt == nil {
		return 1
	}
	cfg := e.fx.cfg
	for c.stragAt <= t {
		gap := faultDur(c.stragSt, cfg.StragglerEvery)
		length := faultDur(c.stragSt, cfg.StragglerFor)
		c.strag = append(c.strag, faultWindow{start: c.stragAt + gap, end: c.stragAt + gap + length})
		c.stragAt += gap + length
	}
	i := sort.Search(len(c.strag), func(i int) bool { return c.strag[i].start > t })
	if i > 0 && t < c.strag[i-1].end {
		return cfg.StragglerFactor
	}
	return 1
}

// nextFault reports the earliest pending crash-window start after t across
// active replicas — the replay event loop treats it as a wake-up so idle
// crashes apply (and emit) at their scheduled instants. Returns false when
// crashes are disabled.
func (e *Endpoint) nextFault(t time.Duration) (time.Duration, bool) {
	if e.fx == nil {
		return 0, false
	}
	best := time.Duration(1<<63 - 1)
	found := false
	for i := 0; i < e.active; i++ {
		c := &e.fx.clocks[i]
		if c.st == nil {
			continue
		}
		for len(c.pending) == 0 {
			c.gen(e.fx.cfg, c.at)
		}
		if w := c.pending[0]; w.start > t && w.start < best {
			best, found = w.start, true
		}
	}
	return best, found
}
