package serve

import (
	"reflect"
	"testing"
	"time"

	"embench/internal/serve/obs"
)

// faultedCfg is a deliberately hostile resilient deployment for the
// fault tests: crashes every ~40s of uptime per replica, slow repairs,
// frequent 4x straggler episodes, and the full client policy ladder on a
// small pool so every mechanism (crash requeue, retry, hedge, shed,
// timeout) actually fires within a short trace.
func faultedCfg() Config {
	return Config{
		Profile: noJitter, Replicas: 3, MaxBatch: 4,
		MaxWait: time.Second, CacheEntries: 64,
		Faults: Faults{
			MTBF: 40 * time.Second, MTTR: 10 * time.Second,
			StragglerEvery: 30 * time.Second, StragglerFor: 8 * time.Second,
			StragglerFactor: 4, Seed: 9,
		},
		Retry: RetryPolicy{Max: 2, Base: 300 * time.Millisecond, Factor: 2, Jitter: 0.5},
		Hedge: HedgePolicy{Delay: 4 * time.Second},
		Shed:  ShedPolicy{Queue: 30},
	}
}

// faultedTrace is a dense request stream with per-attempt deadlines
// tight enough that repair pile-ups expire them.
func faultedTrace() []Request {
	reqs := testTrace(8, 12, 2*time.Second, 150*time.Millisecond)
	for i := range reqs {
		reqs[i].Deadline = 12 * time.Second
	}
	return reqs
}

// TestFaultsDisabledByteIdentical pins the zero-value contract: a config
// carrying explicitly zero Faults and resilience policies is the SAME
// config as one that never mentions them — identical replay results,
// identical closed-loop outcomes, identical recorded event streams.
func TestFaultsDisabledByteIdentical(t *testing.T) {
	base := Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
		MaxWait: time.Second, CacheEntries: 64}
	with := base
	with.Faults, with.Retry, with.Hedge, with.Shed = Faults{}, RetryPolicy{}, HedgePolicy{}, ShedPolicy{}

	reqs := testTrace(6, 6, 4*time.Second, 300*time.Millisecond)
	recA, recB := obs.NewRecorder(), obs.NewRecorder()
	a := ReplayObserved(base, reqs, recA)
	b := ReplayObserved(with, reqs, recB)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("zero-value fault config changed the replay")
	}
	if !reflect.DeepEqual(recA.Events(), recB.Events()) {
		t.Fatalf("zero-value fault config changed the recorded stream")
	}

	ea, eb := New(base), New(with)
	for _, c := range monotoneCalls(24) {
		ra, rb := ea.Serve(c), eb.Serve(c)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("zero-value fault config changed a closed-loop result: %+v != %+v", ra, rb)
		}
	}
	if !reflect.DeepEqual(ea.Stats(), eb.Stats()) {
		t.Fatalf("zero-value fault config changed closed-loop stats")
	}
}

// TestFaultReplayDeterministicAndValidates drives the full resilient
// event loop under observation and checks three contracts at once: the
// sink never perturbs the simulation, reruns are byte-identical, and the
// recorded stream passes Validate (monotone Seq, per-kind invariants)
// while exercising every fault/resilience event kind.
func TestFaultReplayDeterministicAndValidates(t *testing.T) {
	cfg, reqs := faultedCfg(), faultedTrace()
	rec := obs.NewRecorder()
	a := ReplayObserved(cfg, reqs, rec)
	b := Replay(cfg, reqs)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("attaching a sink perturbed the fault-injected replay")
	}
	if c := Replay(cfg, reqs); !reflect.DeepEqual(b, c) {
		t.Fatalf("identical fault-injected replays diverged")
	}

	evs := rec.Events()
	if err := obs.Validate(evs); err != nil {
		t.Fatalf("fault-injected stream fails validation: %v", err)
	}
	kinds := map[obs.Kind]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	for _, k := range []obs.Kind{
		obs.KindReplicaDown, obs.KindReplicaUp, obs.KindRetry,
		obs.KindHedge, obs.KindShed, obs.KindTimeout,
	} {
		if kinds[k] == 0 {
			t.Errorf("stream has no %s events — config not hostile enough for the test", k)
		}
	}
	if kinds[obs.KindReplicaDown] != kinds[obs.KindReplicaUp] {
		t.Errorf("replica_down/up events unbalanced: %d/%d",
			kinds[obs.KindReplicaDown], kinds[obs.KindReplicaUp])
	}

	// The stats carry the same story the stream does.
	s := a.Stats
	if s.Retries == 0 || s.HedgesIssued == 0 || s.ShedRequests == 0 ||
		s.TimedOut == 0 || s.FailedBatches == 0 || s.ReplicaDowntime == 0 {
		t.Errorf("resilience counters missing activity: %+v", s)
	}
	if s.HedgeWins > s.HedgesIssued {
		t.Errorf("hedge wins %d exceed hedges issued %d", s.HedgeWins, s.HedgesIssued)
	}
}

// downTimes extracts each replica's crash-window start times in order.
func downTimes(evs []obs.Event) map[int][]time.Duration {
	out := map[int][]time.Duration{}
	for _, ev := range evs {
		if ev.Kind == obs.KindReplicaDown {
			out[ev.Replica] = append(out[ev.Replica], ev.T)
		}
	}
	return out
}

// TestFaultScheduleTrafficIndependent pins the core schedule property:
// fault windows are a pure function of (Faults.Seed, replica slot), so
// two entirely different workloads replayed under the same fault config
// crash at the same virtual times — the shorter run's per-replica crash
// sequence is a prefix of the longer run's.
func TestFaultScheduleTrafficIndependent(t *testing.T) {
	cfg := faultedCfg()
	// No shedding/deadlines needed here; keep every request so the two
	// traces differ only in traffic shape.
	cfg.Shed = ShedPolicy{}
	short := testTrace(4, 6, 3*time.Second, 250*time.Millisecond)
	long := testTrace(9, 14, 2*time.Second, 100*time.Millisecond)

	recS, recL := obs.NewRecorder(), obs.NewRecorder()
	ReplayObserved(cfg, short, recS)
	ReplayObserved(cfg, long, recL)
	ds, dl := downTimes(recS.Events()), downTimes(recL.Events())
	if len(dl) == 0 {
		t.Fatalf("long run recorded no crashes")
	}
	for ri, ts := range ds {
		tl := dl[ri]
		a, b := ts, tl
		if len(a) > len(b) {
			a, b = b, a
		}
		if !reflect.DeepEqual(a, b[:len(a)]) {
			t.Errorf("replica %d: crash schedules diverge across workloads:\n short: %v\n  long: %v", ri, ts, tl)
		}
	}
}

// TestServingMergeSumsResilienceCounters pins the fleet-merge exactness
// of the new counters: merging two runs' Serving stats sums every
// resilience field exactly, in either merge order.
func TestServingMergeSumsResilienceCounters(t *testing.T) {
	cfg := faultedCfg()
	a := Replay(cfg, faultedTrace()).Stats
	cfg.Faults.Seed = 23
	b := Replay(cfg, testTrace(5, 9, 3*time.Second, 120*time.Millisecond)).Stats

	m := a.Merge(b)
	if m.ShedRequests != a.ShedRequests+b.ShedRequests ||
		m.Retries != a.Retries+b.Retries ||
		m.HedgesIssued != a.HedgesIssued+b.HedgesIssued ||
		m.HedgeWins != a.HedgeWins+b.HedgeWins ||
		m.TimedOut != a.TimedOut+b.TimedOut ||
		m.FailedBatches != a.FailedBatches+b.FailedBatches ||
		m.ReplicaDowntime != a.ReplicaDowntime+b.ReplicaDowntime {
		t.Fatalf("merge does not sum resilience counters exactly:\n a: %+v\n b: %+v\n m: %+v", a, b, m)
	}
	if r := b.Merge(a); !reflect.DeepEqual(m, r) {
		t.Fatalf("resilience-counter merge is order-dependent")
	}
}

// TestValidateRejectsResilientDisagg pins the scope boundary: fault
// injection and client resilience are monolithic-endpoint features, so a
// disaggregated config carrying either must fail validation loudly.
func TestValidateRejectsResilientDisagg(t *testing.T) {
	base := Config{Profile: noJitter, Replicas: 2,
		Prefill: PoolConfig{Replicas: 1}, Decode: PoolConfig{Replicas: 1}}
	for name, mut := range map[string]func(*Config){
		"faults": func(c *Config) { c.Faults = Faults{MTBF: time.Minute} },
		"retry":  func(c *Config) { c.Retry = RetryPolicy{Max: 1} },
		"hedge":  func(c *Config) { c.Hedge = HedgePolicy{Delay: time.Second} },
		"shed":   func(c *Config) { c.Shed = ShedPolicy{Queue: 1} },
	} {
		cfg := base
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s + disaggregation validated; want an error", name)
		}
	}
}
