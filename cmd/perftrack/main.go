// Command perftrack appends benchmark wall-time records to a trajectory
// file and flags regressions against the previous record — the
// machine-readable perf history the ROADMAP's perf-trajectory item asks
// for.
//
// Usage:
//
//	embench -exp fig9 -bench-json BENCH_fleet.json
//	perftrack -in BENCH_fleet.json -history PERF_TRAJECTORY.jsonl -label "$GITHUB_SHA"
//
// Each invocation appends ONE line of JSON to the history file:
// {label, entries: [{experiment, episodes, procs, wall_ms}...]}. Before
// appending, every experiment's wall time is compared to its most recent
// prior record; a ratio above -warn-ratio prints a warning (and, with
// -fail-on-regress, exits nonzero). The file is append-only JSONL so PRs
// accumulate a comparable series; commit it to keep the series across
// machines, or let CI keep an ephemeral one per run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"embench/internal/benchjson"
)

func main() {
	var (
		in      = flag.String("in", "", "bench JSON written by embench -bench-json (required)")
		history = flag.String("history", "PERF_TRAJECTORY.jsonl", "append-only JSONL trajectory file")
		label   = flag.String("label", "local", "record label (commit SHA, PR number, ...)")
		ratio   = flag.Float64("warn-ratio", 1.5, "warn when wall time exceeds the previous record by this factor")
		fail    = flag.Bool("fail-on-regress", false, "exit 1 when a regression is flagged")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	var bf benchjson.File
	if err := json.Unmarshal(data, &bf); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *in, err))
	}
	if len(bf.Entries) == 0 {
		fatal(fmt.Errorf("%s carries no experiment entries", *in))
	}

	prev := lastWallTimes(*history)
	regressed := false
	for _, e := range bf.Entries {
		// Wall times are only comparable between identical run
		// configurations (experiment, episodes, seed, procs); a record
		// taken with different settings is not a baseline.
		p, ok := prev[e.ConfigKey()]
		if !ok || p <= 0 {
			fmt.Printf("perftrack: %-10s %8.0f ms (no prior record for this config)\n", e.Experiment, e.WallMS)
			continue
		}
		r := e.WallMS / p
		mark := ""
		if r > *ratio {
			mark = "  << REGRESSION"
			regressed = true
		}
		fmt.Printf("perftrack: %-10s %8.0f ms (prev %.0f ms, x%.2f)%s\n",
			e.Experiment, e.WallMS, p, r, mark)
	}

	f, err := os.OpenFile(*history, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	line, err := json.Marshal(benchjson.Record{Label: *label, Entries: bf.Entries})
	if err != nil {
		fatal(err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		fatal(err)
	}
	fmt.Printf("perftrack: appended %q to %s\n", *label, *history)

	if regressed && *fail {
		os.Exit(1)
	}
}

// lastWallTimes scans the history for the most recent wall time per run
// configuration (see benchjson.Entry.ConfigKey). A missing or partially
// corrupt file is not an error — the trajectory should keep accumulating
// even if one line was mangled.
func lastWallTimes(path string) map[string]float64 {
	out := map[string]float64{}
	f, err := os.Open(path)
	if err != nil {
		return out
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r benchjson.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			continue
		}
		for _, e := range r.Entries {
			out[e.ConfigKey()] = e.WallMS
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perftrack:", err)
	os.Exit(1)
}
