package trace

import (
	"testing"
	"time"
)

func sample() *Trace {
	t := New()
	t.Record(Event{Step: 0, Agent: "a0", Module: Sensing, Latency: time.Second})
	t.Record(Event{Step: 0, Agent: "a0", Module: Planning, Kind: "llm", Latency: 6 * time.Second, PromptTokens: 900, OutputTokens: 120, LLMCall: true})
	t.Record(Event{Step: 0, Agent: "a0", Module: Comms, Kind: "message", Latency: 2 * time.Second, PromptTokens: 400, OutputTokens: 60, LLMCall: true, Useful: true})
	t.Record(Event{Step: 0, Agent: "a0", Module: Execution, Kind: "astar", Latency: time.Second})
	t.Record(Event{Step: 1, Agent: "a0", Module: Planning, Kind: "llm", Latency: 7 * time.Second, PromptTokens: 1100, OutputTokens: 130, LLMCall: true})
	t.Record(Event{Step: 1, Agent: "a0", Module: Comms, Kind: "message", Latency: 2 * time.Second, PromptTokens: 500, OutputTokens: 50, LLMCall: true, Useful: false})
	return t
}

func TestBreakdownAndTotal(t *testing.T) {
	tr := sample()
	bd := tr.Breakdown()
	if bd[Planning] != 13*time.Second {
		t.Fatalf("planning total = %v", bd[Planning])
	}
	if bd[Sensing] != time.Second {
		t.Fatalf("sensing total = %v", bd[Sensing])
	}
	if tr.Total() != 19*time.Second {
		t.Fatalf("total = %v, want 19s", tr.Total())
	}
}

func TestFraction(t *testing.T) {
	tr := sample()
	got := tr.Fraction(Planning)
	want := 13.0 / 19.0
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Fraction(planning) = %v, want %v", got, want)
	}
	if New().Fraction(Planning) != 0 {
		t.Fatal("empty trace fraction should be 0")
	}
}

func TestLLMShareAndCalls(t *testing.T) {
	tr := sample()
	want := 17.0 / 19.0
	if got := tr.LLMShare(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("LLMShare = %v, want %v", got, want)
	}
	if tr.LLMCalls() != 4 {
		t.Fatalf("LLMCalls = %d, want 4", tr.LLMCalls())
	}
}

func TestTokens(t *testing.T) {
	tr := sample()
	p, o := tr.Tokens()
	if p != 2900 || o != 360 {
		t.Fatalf("Tokens = %d/%d, want 2900/360", p, o)
	}
}

func TestSteps(t *testing.T) {
	if got := sample().Steps(); got != 2 {
		t.Fatalf("Steps = %d, want 2", got)
	}
	if got := New().Steps(); got != 0 {
		t.Fatalf("empty Steps = %d, want 0", got)
	}
}

func TestMessages(t *testing.T) {
	s := sample().Messages()
	if s.Generated != 2 || s.Useful != 1 {
		t.Fatalf("Messages = %+v", s)
	}
	if s.UsefulRate() != 0.5 {
		t.Fatalf("UsefulRate = %v", s.UsefulRate())
	}
	var zero MessageStats
	if zero.UsefulRate() != 0 {
		t.Fatal("zero MessageStats UsefulRate should be 0")
	}
}

func TestTokenSeries(t *testing.T) {
	tr := sample()
	series := tr.TokenSeries()
	plan := series["a0/planning"]
	if len(plan) != 2 {
		t.Fatalf("planning series len = %d, want 2", len(plan))
	}
	if plan[0].Tokens != 900 || plan[1].Tokens != 1100 {
		t.Fatalf("planning series = %+v", plan)
	}
	if plan[0].Step > plan[1].Step {
		t.Fatal("series not ordered by step")
	}
	msg := series["a0/communication"]
	if len(msg) != 2 || msg[1].Tokens != 500 {
		t.Fatalf("comm series = %+v", msg)
	}
}

func TestTokenSeriesFirstCallPerStepOnly(t *testing.T) {
	tr := New()
	tr.Record(Event{Step: 0, Agent: "a", Module: Planning, LLMCall: true, PromptTokens: 100})
	tr.Record(Event{Step: 0, Agent: "a", Module: Planning, LLMCall: true, PromptTokens: 999})
	pts := tr.TokenSeries()["a/planning"]
	if len(pts) != 1 || pts[0].Tokens != 100 {
		t.Fatalf("want first call only, got %+v", pts)
	}
}
