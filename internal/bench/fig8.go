package bench

import (
	"fmt"
	"strings"
	"time"

	"embench/internal/llm"
	"embench/internal/metrics"
	"embench/internal/multiagent"
	"embench/internal/prompt"
	"embench/internal/rng"
	"embench/internal/serve"
	"embench/internal/world"
)

// Fig8 is the serving-contention experiment: what happens to an
// embodied-agent system when its agents stop getting a dedicated model
// deployment each and instead share one serving endpoint (paper Recs. 1–3,
// arXiv:2509.09560's disaggregation argument). It has two panels:
//
//   - closed loop: live CoELA episodes routed through a shared endpoint,
//     sweeping team size × replicas × batching policy. Queueing delay feeds
//     back into the episode timeline, so task latency and success move too.
//   - open loop: a synthetic per-agent request trace replayed against the
//     endpoint's discrete-event scheduler, isolating pure serving behaviour
//     (queue wait, batch occupancy, cache hit rate, throughput) from task
//     dynamics.

// Fig8Row is one closed-loop (system, agents, endpoint config) sample.
type Fig8Row struct {
	System         string
	Agents         int
	Replicas       int
	MaxBatch       int
	SuccessRate    float64
	TaskLatency    time.Duration // mean episode duration
	MeanQueueWait  time.Duration // per LLM call
	BatchOccupancy float64
	CacheHitRate   float64
}

// Fig8ReplayRow is one open-loop (streams, endpoint config) sample.
type Fig8ReplayRow struct {
	Agents         int // concurrent request streams
	Replicas       int
	MaxBatch       int
	MeanQueueWait  time.Duration
	MaxQueueWait   time.Duration
	BatchOccupancy float64
	CacheHitRate   float64
	Throughput     float64 // requests per simulated second
}

// Fig8Report bundles both panels.
type Fig8Report struct {
	Closed []Fig8Row
	Replay []Fig8ReplayRow
}

// fig8System is the closed-loop workload: CoELA issues three LLM calls per
// agent per step (message, plan, act-select), the heaviest shared-endpoint
// pressure in the suite.
const fig8System = "CoELA"

// Fig8Agents is the team-size axis of both panels.
var Fig8Agents = []int{2, 4, 8}

// fig8Endpoints is the endpoint-policy axis: no batching on one replica
// (the contended baseline), then continuous batching, then batching with
// more replicas.
func fig8Endpoints() []serve.Config {
	base := serve.Config{
		MaxBatch:     1,
		MaxWait:      1500 * time.Millisecond,
		CacheEntries: 512,
	}
	var out []serve.Config
	for _, ec := range []struct{ replicas, maxBatch int }{
		{1, 1}, {1, 4}, {2, 4}, {4, 4},
	} {
		c := base
		c.Replicas, c.MaxBatch = ec.replicas, ec.maxBatch
		out = append(out, c)
	}
	return out
}

// Fig8 sweeps team size × endpoint policy in both panels.
func Fig8(cfg Config) Fig8Report {
	var rep Fig8Report

	// Closed loop: live episodes against the shared endpoint. Parallel
	// per-agent spans make the contention visible on the timeline — with a
	// dedicated model per agent the spans would fully overlap, with a
	// shared endpoint they serialize behind the queue.
	set := cfg.newBatchSet()
	var ids []int
	w := mustGet(fig8System)
	for _, n := range Fig8Agents {
		for _, ec := range fig8Endpoints() {
			sc := ec
			ids = append(ids, set.add(w, world.Medium, n, nil,
				multiagent.Options{Parallel: true, Serve: &sc}))
			rep.Closed = append(rep.Closed, Fig8Row{
				System: fig8System, Agents: n,
				Replicas: sc.Replicas, MaxBatch: sc.MaxBatch,
			})
		}
	}
	set.run()
	for i := range rep.Closed {
		eps, _ := set.results(ids[i])
		s := metrics.Summarize(eps)
		rep.Closed[i].SuccessRate = s.SuccessRate
		rep.Closed[i].TaskLatency = s.MeanDuration
		rep.Closed[i].MeanQueueWait = s.Serving.MeanQueueWait()
		rep.Closed[i].BatchOccupancy = s.Serving.BatchOccupancy()
		rep.Closed[i].CacheHitRate = s.Serving.CacheHitRate()
	}

	// Open loop: replay a deterministic synthetic trace per team size.
	for _, n := range Fig8Agents {
		reqs := fig8Trace(n, cfg.Seed)
		for _, ec := range fig8Endpoints() {
			sc := ec
			sc.Profile = llm.GPT4
			res := serve.Replay(sc, reqs)
			rep.Replay = append(rep.Replay, Fig8ReplayRow{
				Agents: n, Replicas: sc.Replicas, MaxBatch: sc.MaxBatch,
				MeanQueueWait:  res.Stats.MeanQueueWait(),
				MaxQueueWait:   maxQueueWait(res),
				BatchOccupancy: res.Stats.BatchOccupancy(),
				CacheHitRate:   res.Stats.CacheHitRate(),
				Throughput:     res.Throughput(),
			})
		}
	}
	return rep
}

// fig8Trace builds the open-loop request schedule: n agent streams, each
// issuing one planning-sized call per environment step. All streams share
// the fixed system/task preamble (the prefix the cache can reuse) and carry
// a per-agent memory section that grows with the step, as the Fig. 6 token
// curves do. Arrival stagger within a step comes from a seeded stream, so
// the trace is a pure function of (agents, seed).
func fig8Trace(agents int, seed uint64) []serve.Request {
	const (
		steps      = 6
		stepPeriod = 12 * time.Second
		outTokens  = 140
	)
	jitter := rng.New(seed).NewStream("fig8/replay")
	var reqs []serve.Request
	for s := 0; s < steps; s++ {
		for a := 0; a < agents; a++ {
			arrive := time.Duration(s)*stepPeriod +
				time.Duration(jitter.Range(0, 500))*time.Millisecond
			p := prompt.New(
				prompt.Section{Name: "system", Tokens: 220},
				prompt.Section{Name: "task", Tokens: 90},
				prompt.Section{Name: fmt.Sprintf("memory-a%d", a), Tokens: 60 + 25*s, Droppable: true},
				prompt.Section{Name: "observation", Tokens: 120, Droppable: true},
			)
			reqs = append(reqs, serve.Request{
				Agent: fmt.Sprintf("agent%d", a), Arrival: arrive,
				Prompt: p, OutTokens: outTokens,
			})
		}
	}
	return reqs
}

// maxQueueWait scans a replay for its worst queueing delay.
func maxQueueWait(res serve.ReplayResult) time.Duration {
	var max time.Duration
	for _, c := range res.Completions {
		if c.QueueWait > max {
			max = c.QueueWait
		}
	}
	return max
}

// SelectFig8 filters closed-loop rows for one endpoint policy, ordered by
// team size.
func SelectFig8(rows []Fig8Row, replicas, maxBatch int) []Fig8Row {
	var out []Fig8Row
	for _, n := range Fig8Agents {
		for _, r := range rows {
			if r.Replicas == replicas && r.MaxBatch == maxBatch && r.Agents == n {
				out = append(out, r)
			}
		}
	}
	return out
}

// RenderFig8 formats both panels.
func RenderFig8(rep Fig8Report) string {
	var b strings.Builder
	b.WriteString("Fig. 8 — serving contention on a shared endpoint (medium tasks)\n")
	fmt.Fprintf(&b, "%-8s %6s %8s %8s %9s %10s %9s %6s %6s\n",
		"System", "agents", "replicas", "batch", "success", "latency", "q-wait", "occ", "cache")
	for _, r := range rep.Closed {
		fmt.Fprintf(&b, "%-8s %6d %8d %8d %8.0f%% %9.1fm %8.1fs %6.2f %5.0f%%\n",
			r.System, r.Agents, r.Replicas, r.MaxBatch,
			100*r.SuccessRate, r.TaskLatency.Minutes(), r.MeanQueueWait.Seconds(),
			r.BatchOccupancy, 100*r.CacheHitRate)
	}
	b.WriteString("\nFig. 8b — open-loop replay (one planning call per agent per 12s step)\n")
	fmt.Fprintf(&b, "%6s %8s %8s %9s %9s %6s %6s %8s\n",
		"agents", "replicas", "batch", "q-wait", "q-max", "occ", "cache", "req/s")
	for _, r := range rep.Replay {
		fmt.Fprintf(&b, "%6d %8d %8d %8.1fs %8.1fs %6.2f %5.0f%% %8.3f\n",
			r.Agents, r.Replicas, r.MaxBatch,
			r.MeanQueueWait.Seconds(), r.MaxQueueWait.Seconds(),
			r.BatchOccupancy, 100*r.CacheHitRate, r.Throughput)
	}
	return b.String()
}
