package serve

import (
	"reflect"
	"testing"
	"time"

	"embench/internal/llm"
)

// toCalls converts a replay trace to closed-loop calls in arrival order.
func toCalls(reqs []Request) []llm.Call {
	calls := make([]llm.Call, len(reqs))
	for i, r := range reqs {
		calls[i] = llm.Call{Agent: r.Agent, Arrival: r.Arrival,
			Prompt: r.Prompt, PromptTokens: r.Prompt.Tokens(), OutTokens: r.OutTokens}
	}
	return calls
}

// TestServeAndReplayPriceIdentically is the shared-admission regression:
// the closed-loop path (Endpoint.Serve) and the open-loop path (Replay)
// must produce identical statistics for the same trace, because both
// admit through one helper. Two shapes are pinned: a spread-out trace
// (every request runs alone) and a simultaneous-arrival trace whose
// closed-loop join window forms exactly the batch Replay launches.
func TestServeAndReplayPriceIdentically(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		reqs []Request
	}{
		{
			name: "sequential-no-overlap",
			cfg:  Config{Profile: noJitter, Replicas: 1, CacheEntries: 64},
			reqs: testTrace(3, 4, time.Minute, 2*time.Second),
		},
		{
			name: "sequential-two-replicas",
			cfg:  Config{Profile: noJitter, Replicas: 2, CacheEntries: 64},
			reqs: testTrace(2, 4, time.Minute, 2*time.Second),
		},
		{
			name: "simultaneous-batch",
			cfg: Config{Profile: noJitter, Replicas: 1, MaxBatch: 4,
				MaxWait: time.Second, CacheEntries: 64},
			// 4 requests at the same instant = exactly one full batch: the
			// closed-loop join window and the replay queue both form it.
			reqs: testTrace(4, 2, time.Minute, 0),
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			open := Replay(tc.cfg, tc.reqs)
			e := New(tc.cfg)
			for _, c := range toCalls(tc.reqs) {
				e.Serve(c)
			}
			if !reflect.DeepEqual(e.Stats(), open.Stats) {
				t.Fatalf("closed-loop and open-loop pricing diverged:\nclosed %+v\nopen   %+v",
					e.Stats(), open.Stats)
			}
		})
	}
}

// TestServeBatchPricesLikeReplayBatch pins the third admission path:
// an explicit step-phase batch (ServeBatch) must price exactly like the
// same members launched as one replay batch.
func TestServeBatchPricesLikeReplayBatch(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 1, MaxBatch: 4,
		MaxWait: time.Second, CacheEntries: 64}
	reqs := testTrace(4, 1, time.Minute, 0) // one step, 4 simultaneous requests
	open := Replay(cfg, reqs)
	e := New(cfg)
	served := e.ServeBatch(toCalls(reqs))
	if !reflect.DeepEqual(e.Stats(), open.Stats) {
		t.Fatalf("explicit batch and replay batch pricing diverged:\nbatch %+v\nopen  %+v",
			e.Stats(), open.Stats)
	}
	for i, s := range served {
		c := open.Completions[i]
		if s.Latency != c.Done-c.Arrival || s.QueueWait != c.QueueWait ||
			s.BatchSize != c.BatchSize || s.CachedTokens != c.CachedTokens {
			t.Fatalf("member %d diverged: served %+v vs completion %+v", i, s, c)
		}
	}
}
