package serve

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"embench/internal/llm"
	"embench/internal/serve/obs"
)

// monotoneCalls builds a deterministic closed-loop call sequence with
// non-decreasing arrivals — the submission order a single episode clock (or
// a fleet merge) produces.
func monotoneCalls(n int) []llm.Call {
	calls := make([]llm.Call, n)
	for i := range calls {
		calls[i] = llm.Call{
			Agent:     fmt.Sprintf("a%d", i%3),
			Arrival:   time.Duration(i) * 900 * time.Millisecond,
			Prompt:    sharedPrompt(fmt.Sprintf("a%d", i%3), 40+7*(i%5)),
			OutTokens: 30 + i%4*10,
		}
	}
	return calls
}

func TestServeNilSinkZeroAllocs(t *testing.T) {
	e := New(Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
		MaxWait: time.Second, CacheTokens: 4096})
	call := llm.Call{Agent: "a", Prompt: sharedPrompt("a", 40), OutTokens: 30}
	// Warm the endpoint's reusable scratch (chain buffer, latency buffers,
	// cache entries, histogram state) so steady state is what's measured.
	for i := 0; i < 16; i++ {
		call.Arrival = time.Duration(i) * time.Second
		e.Serve(call)
	}
	arrival := call.Arrival
	allocs := testing.AllocsPerRun(200, func() {
		arrival += time.Second
		call.Arrival = arrival
		e.Serve(call)
	})
	if allocs != 0 {
		t.Fatalf("nil-sink Serve allocates %.1f objects/request, want 0", allocs)
	}
}

func BenchmarkServeNilSink(b *testing.B) {
	e := New(Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
		MaxWait: time.Second, CacheTokens: 4096})
	call := llm.Call{Agent: "a", Prompt: sharedPrompt("a", 40), OutTokens: 30}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		call.Arrival = time.Duration(i) * time.Second
		e.Serve(call)
	}
}

func BenchmarkServeRecorder(b *testing.B) {
	e := New(Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
		MaxWait: time.Second, CacheTokens: 4096})
	rec := obs.NewRecorder()
	e.SetSink(rec)
	call := llm.Call{Agent: "a", Prompt: sharedPrompt("a", 40), OutTokens: 30}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		call.Arrival = time.Duration(i) * time.Second
		e.Serve(call)
	}
}

// TestSinkDoesNotPerturbServing is the instrumentation no-op contract: an
// attached sink must leave served results and endpoint statistics
// byte-identical to an un-instrumented run.
func TestSinkDoesNotPerturbServing(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 2, MaxBatch: 4,
		MaxWait: time.Second, CacheTokens: 2048, Routing: RouteCacheAffinity,
		Autoscale: Autoscale{Interval: 5 * time.Second, ColdStart: time.Second, Max: 2}}
	run := func(sink obs.Sink) ([]llm.Served, any) {
		e := New(cfg)
		if sink != nil {
			e.SetSink(sink)
		}
		var out []llm.Served
		for _, c := range monotoneCalls(40) {
			out = append(out, e.Serve(c))
		}
		return out, e.Stats()
	}
	plainOut, plainStats := run(nil)
	rec := obs.NewRecorder()
	tracedOut, tracedStats := run(rec)
	if !reflect.DeepEqual(plainOut, tracedOut) {
		t.Fatal("attaching a sink changed served results")
	}
	if !reflect.DeepEqual(plainStats, tracedStats) {
		t.Fatal("attaching a sink changed endpoint statistics")
	}
	if rec.Len() == 0 {
		t.Fatal("recorder saw no events")
	}
}

func TestServeEventLifecycle(t *testing.T) {
	rec := obs.NewRecorder()
	e := New(Config{Profile: noJitter, Replicas: 1, MaxBatch: 4,
		MaxWait: 2 * time.Second, CacheTokens: 4096})
	e.SetSink(rec)
	e.Serve(llm.Call{Agent: "a0", Arrival: 0, Prompt: sharedPrompt("a0", 20), OutTokens: 50})
	// Inside the join window: rides the in-flight batch.
	e.Serve(llm.Call{Agent: "a1", Arrival: time.Second, Prompt: sharedPrompt("a1", 20), OutTokens: 50})

	events := rec.Events()
	if err := obs.Validate(events); err != nil {
		t.Fatalf("recorded stream fails validation: %v", err)
	}
	var kinds []obs.Kind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	want := []obs.Kind{
		obs.KindConfig,
		obs.KindSubmit, obs.KindRoute, obs.KindCacheMiss, obs.KindBatchStart, obs.KindComplete,
		obs.KindSubmit, obs.KindRoute, obs.KindCacheHit, obs.KindBatchJoin, obs.KindComplete,
	}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("event kinds = %v\nwant %v", kinds, want)
	}
	cfgEv := events[0]
	if cfgEv.Replica != 1 || cfgEv.Active != 1 || cfgEv.Batch != 4 || cfgEv.Tokens != 4096 {
		t.Errorf("config event = %+v", cfgEv)
	}
	// The route event carries one pressure score per active replica, taken
	// before admission touched the cache.
	if route := events[2]; len(route.Scores) != 1 || route.Req != 1 {
		t.Errorf("route event = %+v", route)
	}
	// The joiner's cache hit sees the first request's warm shared prefix.
	if hit := events[8]; hit.Cached < 300 || hit.Cached > hit.Tokens {
		t.Errorf("join cache hit = %+v, want >= 300 warm tokens", hit)
	}
	join := events[9]
	if join.Req != 2 || join.Batch != 2 || join.Dur <= 0 {
		t.Errorf("batch_join event = %+v", join)
	}
	// Completes carry as-served values consistent with the returned Served.
	first := events[5]
	if first.Req != 1 || first.Batch != 1 || first.Wait != 0 || first.T != first.Dur {
		t.Errorf("first complete = %+v", first)
	}
	// Request ids survive Reset's zeroing.
	e.Reset()
	rec.Reset()
	e.Serve(llm.Call{Agent: "a0", Arrival: 0, Prompt: sharedPrompt("a0", 20), OutTokens: 50})
	for _, ev := range rec.Events() {
		if ev.Kind == obs.KindSubmit && ev.Req != 1 {
			t.Errorf("request ids not reset: %+v", ev)
		}
	}
}

func TestBatchSealEvent(t *testing.T) {
	rec := obs.NewRecorder()
	e := New(Config{Profile: noJitter, Replicas: 1, MaxBatch: 4, MaxWait: time.Second})
	e.SetSink(rec)
	e.Serve(llm.Call{Agent: "a", Arrival: 0, Prompt: sharedPrompt("a", 20), OutTokens: 50})
	// Far outside the join window: the new batch seals the old frontier.
	e.Serve(llm.Call{Agent: "a", Arrival: time.Hour, Prompt: sharedPrompt("a", 20), OutTokens: 50})
	var seals int
	for _, ev := range rec.Events() {
		if ev.Kind == obs.KindBatchSeal {
			seals++
			if ev.Batch != 1 {
				t.Errorf("seal batch = %d, want 1", ev.Batch)
			}
		}
	}
	if seals != 1 {
		t.Fatalf("seal events = %d, want 1", seals)
	}
}

func TestFleetAdmitEvents(t *testing.T) {
	rec := obs.NewRecorder()
	f := NewFleet(Config{Profile: noJitter, Replicas: 2, MaxBatch: 2, MaxWait: time.Second}, 2)
	f.SetSink(rec)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c := f.Client(1)
		defer c.Finish()
		c.Serve(llm.Call{Agent: "b", Arrival: 500 * time.Millisecond,
			Prompt: sharedPrompt("b", 30), OutTokens: 40})
	}()
	c0 := f.Client(0)
	c0.Serve(llm.Call{Agent: "a", Arrival: 0, Prompt: sharedPrompt("a", 30), OutTokens: 40})
	c0.Finish()
	<-done

	var admits []obs.Event
	for _, ev := range rec.Events() {
		if ev.Kind == obs.KindAdmit {
			admits = append(admits, ev)
		}
	}
	if len(admits) != 2 {
		t.Fatalf("admit events = %d, want 2 (one per client call)", len(admits))
	}
	// The merge admits in arrival order: client 0 at t=0, client 1 at 0.5s.
	if admits[0].Client != 0 || admits[1].Client != 1 {
		t.Errorf("admit clients = %d,%d, want 0,1", admits[0].Client, admits[1].Client)
	}
	if admits[0].T != 0 || admits[1].T != 500*time.Millisecond {
		t.Errorf("admit times = %v,%v", admits[0].T, admits[1].T)
	}
	if err := obs.Validate(rec.Events()); err != nil {
		t.Fatalf("fleet stream fails validation: %v", err)
	}
}

func TestShardedFleetSinkTagsShards(t *testing.T) {
	rec := obs.NewRecorder()
	sf := NewShardedFleet(Config{Profile: noJitter, Replicas: 1}, 4, 2)
	sf.SetSink(rec)
	shards := map[int]bool{}
	for _, ev := range rec.Events() {
		if ev.Kind == obs.KindConfig {
			shards[ev.Shard] = true
		}
	}
	if len(shards) != 2 || !shards[0] || !shards[1] {
		t.Fatalf("config events tagged shards %v, want {0,1}", shards)
	}
}

func TestAutoscaleEvents(t *testing.T) {
	rec := obs.NewRecorder()
	cfg := Config{Profile: noJitter, Replicas: 4, MaxBatch: 1, CacheEntries: 64,
		Autoscale: Autoscale{Interval: 10 * time.Second, ColdStart: time.Second,
			UpUtil: 0.5, DownUtil: 0.3, Min: 1, Max: 4}}
	// A burst that forces scale-up, then a long quiet tail that scales back
	// down (replayed ticks), finishing with one straggler to extend the run.
	var reqs []Request
	for i := 0; i < 30; i++ {
		reqs = append(reqs, Request{Agent: "a", Arrival: time.Duration(i) * 2 * time.Second,
			Prompt: sharedPrompt("a", 40), OutTokens: 60})
	}
	reqs = append(reqs, Request{Agent: "a", Arrival: 10 * time.Minute,
		Prompt: sharedPrompt("a", 40), OutTokens: 60})
	res := ReplayObserved(cfg, reqs, rec)
	if res.Stats.ScaleUps == 0 || res.Stats.ScaleDowns == 0 {
		t.Skipf("workload did not exercise scaling (ups=%d downs=%d)",
			res.Stats.ScaleUps, res.Stats.ScaleDowns)
	}
	var ticks, ups, downs, flushes int
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case obs.KindScaleTick:
			ticks++
			if ev.Active < 1 {
				t.Errorf("tick with active %d", ev.Active)
			}
		case obs.KindScaleUp:
			ups++
		case obs.KindScaleDown:
			downs++
		case obs.KindCacheFlush:
			flushes++
		}
	}
	if ups != res.Stats.ScaleUps || downs != res.Stats.ScaleDowns {
		t.Errorf("scale events %d up / %d down, stats say %d/%d",
			ups, downs, res.Stats.ScaleUps, res.Stats.ScaleDowns)
	}
	if ticks == 0 {
		t.Error("no evaluation ticks recorded")
	}
	// Every retirement flushes the replica's cache; warm replicas flush
	// tokens.
	if flushes != downs {
		t.Errorf("flush events = %d, want one per scale-down (%d)", flushes, downs)
	}
	if err := obs.Validate(rec.Events()); err != nil {
		t.Fatalf("autoscaled stream fails validation: %v", err)
	}
}

// TestRecordReplayDeterminism is the flight recorder's round-trip contract:
// a closed-loop run recorded under the exactness conditions (monotone
// arrivals, MaxBatch=1, least-loaded routing — see TraceRequests) and fed
// back through Replay reproduces the live run's serving statistics exactly.
func TestRecordReplayDeterminism(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 2, MaxBatch: 1,
		CacheTokens: 4096, Routing: RouteLeastLoaded}
	rec := obs.NewRecorder()
	live := New(cfg)
	live.SetSink(rec)
	calls := monotoneCalls(60)
	for i, c := range calls {
		if i > 0 && c.Arrival < calls[i-1].Arrival {
			t.Fatalf("test workload violates monotone arrivals at %d", i)
		}
		live.Serve(c)
	}
	liveStats := live.Stats()

	reqs, err := TraceRequests(rec.Events())
	if err != nil {
		t.Fatalf("TraceRequests: %v", err)
	}
	if len(reqs) != len(calls) {
		t.Fatalf("trace reconstructed %d requests, want %d", len(reqs), len(calls))
	}
	res := Replay(cfg, reqs)
	if !reflect.DeepEqual(res.Stats, liveStats) {
		t.Fatalf("replayed stats diverge from live run:\n live: %+v\nreplay: %+v",
			liveStats, res.Stats)
	}
}

// TestReplayTraceRoundTrip closes the record-once-replay-many loop in the
// open-loop direction: a replay's own recorded trace, reconstructed and
// replayed again, reproduces the first replay bit for bit. MaxBatch is 1
// because TraceRequests refuses batched recordings outright (see
// TestTraceRequestsRejectsBatchedRecording).
func TestReplayTraceRoundTrip(t *testing.T) {
	cfg := Config{Profile: noJitter, Replicas: 2, MaxBatch: 1,
		CacheTokens: 2048, Routing: RouteCacheAffinity,
		Identity: IdentityContent}
	reqs := testTrace(4, 5, 8*time.Second, 200*time.Millisecond)
	rec := obs.NewRecorder()
	first := ReplayObserved(cfg, reqs, rec)

	rebuilt, err := TraceRequests(rec.Events())
	if err != nil {
		t.Fatalf("TraceRequests: %v", err)
	}
	second := Replay(cfg, rebuilt)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("replaying a replay's recorded trace diverged")
	}
	// And the sink changed nothing about the replay itself.
	plain := Replay(cfg, reqs)
	if !reflect.DeepEqual(first, plain) {
		t.Fatal("recording a replay changed its result")
	}
}
