package kitchenctl

import (
	"testing"

	"embench/internal/rng"
	"embench/internal/world"
)

func newKitchen(d world.Difficulty) *Kitchen {
	return New(Config{Difficulty: d}, rng.New(13))
}

func TestConstruction(t *testing.T) {
	k := newKitchen(world.Medium)
	if len(k.Subtasks()) != 5 {
		t.Fatalf("subtasks = %d, want 5", len(k.Subtasks()))
	}
	seen := map[int]bool{}
	for _, e := range k.Subtasks() {
		if e < 0 || e >= len(Elements) {
			t.Fatalf("bad element %d", e)
		}
		if seen[e] {
			t.Fatal("duplicate subtask element")
		}
		seen[e] = true
	}
}

func TestDifficultyScaling(t *testing.T) {
	if len(newKitchen(world.Easy).Subtasks()) >= len(newKitchen(world.Hard).Subtasks()) {
		t.Fatal("hard should have more subtasks")
	}
}

func TestControllerConverges(t *testing.T) {
	k := newKitchen(world.Easy)
	e := k.Subtasks()[0]
	// Retry through occasional slips; convergence must happen quickly.
	for attempt := 0; attempt < 10; attempt++ {
		res := k.Execute(0, DoSubtask{Element: e})
		if res.Achieved {
			if res.Effort.ControlIters < 5 || res.Effort.ControlIters > ctrlMax {
				t.Fatalf("controller iterations = %d, want 5..%d", res.Effort.ControlIters, ctrlMax)
			}
			if !k.subtaskDone(e) {
				t.Fatal("subtask not marked done after convergence")
			}
			return
		}
	}
	t.Fatal("controller never converged in 10 attempts")
}

func TestSlipLeavesPartialProgressAndReplans(t *testing.T) {
	// Hunt for a slip across seeds; verify its bookkeeping.
	for seed := uint64(0); seed < 40; seed++ {
		k := New(Config{Difficulty: world.Easy}, rng.New(seed))
		e := k.Subtasks()[0]
		res := k.Execute(0, DoSubtask{Element: e})
		if !res.Achieved {
			if res.Effort.Replans != 1 {
				t.Fatalf("slip should count one replan: %+v", res.Effort)
			}
			if k.Value(e) <= 0 {
				t.Fatal("slip should leave partial progress")
			}
			return
		}
	}
	t.Fatal("no slip in 40 seeds; slipProb looks broken")
}

func TestOracleSolvesEpisode(t *testing.T) {
	k := newKitchen(world.Hard)
	steps := 0
	for !k.Done() && steps < 40 {
		obs := k.Observe(0)
		prop := k.Propose(0, k.BuildBelief(0, obs.Records))
		k.Execute(0, prop.Good)
		k.Tick()
		steps++
	}
	if !k.Success() {
		t.Fatalf("oracle failed (progress %.2f)", k.Progress())
	}
	if steps > k.MaxSteps() {
		t.Fatalf("oracle used %d steps, horizon %d", steps, k.MaxSteps())
	}
}

func TestProposeSkipsFinished(t *testing.T) {
	k := newKitchen(world.Easy)
	first := k.Subtasks()[0]
	for i := 0; i < 5; i++ {
		if k.Execute(0, DoSubtask{Element: first}).Achieved {
			break
		}
	}
	obs := k.Observe(0)
	prop := k.Propose(0, k.BuildBelief(0, obs.Records))
	if d, ok := prop.Good.(DoSubtask); ok && d.Element == first {
		t.Fatal("oracle re-proposed a finished subtask")
	}
}

func TestProposeIdleWhenAllDone(t *testing.T) {
	k := newKitchen(world.Easy)
	for _, e := range k.Subtasks() {
		for i := 0; i < 6 && !k.subtaskDone(e); i++ {
			k.Execute(0, DoSubtask{Element: e})
		}
	}
	prop := k.Propose(0, k.BuildBelief(0, k.Observe(0).Records))
	if _, ok := prop.Good.(Idle); !ok {
		t.Fatalf("all-done episode should idle, got %s", prop.Good.Describe())
	}
	if !k.Success() {
		t.Fatal("episode should be successful")
	}
}

func TestCorruptionsDistinct(t *testing.T) {
	k := newKitchen(world.Medium)
	prop := k.Propose(0, k.BuildBelief(0, k.Observe(0).Records))
	if len(prop.Corruptions) == 0 {
		t.Fatal("no corruptions")
	}
	for _, c := range prop.Corruptions {
		if c.ID() == prop.Good.ID() {
			t.Fatal("corruption duplicates good decision")
		}
	}
}

func TestExecuteBadElement(t *testing.T) {
	k := newKitchen(world.Easy)
	if k.Execute(0, DoSubtask{Element: 99}).Achieved {
		t.Fatal("bad element should fail")
	}
}

func TestObservationCoversAllElements(t *testing.T) {
	k := newKitchen(world.Easy)
	obs := k.Observe(0)
	if obs.Entities != len(Elements) {
		t.Fatalf("entities = %d, want %d", obs.Entities, len(Elements))
	}
}
