package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestModuleIsClean is the zero-findings gate: the full analyzer suite
// over the whole module must report nothing. Every justified exception in
// the tree carries a //detlint:allow directive; a new finding here means
// either a real determinism/mergeability hazard or a missing (or stale)
// justification — both are build-worthy failures.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, pkg := range pkgs {
		findings, err := Run(pkg, All())
		if err != nil {
			t.Fatalf("analyzing %s: %v", pkg.Path, err)
		}
		for _, f := range findings {
			t.Errorf("module not clean: %s", f)
		}
	}
}

// TestMergeFieldsCatchesSeededRegression is the negative control for the
// gate above: delete one real field-merge line from the production
// metrics package and mergefields must fire on that field. This pins the
// acceptance criterion that dropping any reference from Serving.Merge
// fails the build — if the analyzer ever regresses into silence, this
// test catches it with a true mutation, not a synthetic fixture.
func TestMergeFieldsCatchesSeededRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and type-checks the metrics package")
	}
	const droppedLine = "s.Retries += o.Retries"

	// The mutant must live inside the module so its embench/internal/...
	// imports resolve through `go list` export data.
	dir, err := os.MkdirTemp(".", "mutant-metrics-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })

	src := filepath.Join("..", "metrics")
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	dropped := false
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		text := string(data)
		if strings.Contains(text, droppedLine) {
			text = strings.Replace(text, droppedLine, "", 1)
			dropped = true
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !dropped {
		t.Fatalf("seed line %q not found in %s; update the mutation", droppedLine, src)
	}

	pkg, err := LoadFixture(dir, "embench/internal/metrics")
	if err != nil {
		t.Fatalf("loading mutant: %v", err)
	}
	findings, err := Run(pkg, []*Analyzer{MergeFields})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer == "mergefields" && strings.Contains(f.Message, "Retries") {
			return // the dropped merge was caught
		}
	}
	t.Fatalf("mergefields missed the dropped %q; findings: %v", droppedLine, findings)
}
