package bench

import (
	"fmt"
	"sort"
	"strings"

	"embench/internal/multiagent"
	"embench/internal/trace"
	"embench/internal/world"
)

// Fig6Series is one per-agent token stream over time (paper Fig. 6):
// prompt tokens of each plan/message LLM call, per step.
type Fig6Series struct {
	System string
	Stream string // "agent0/planning", "agent1/communication", ...
	Points []trace.SeriesPoint
}

// fig6Systems are the three workloads the paper plots.
var fig6Systems = []string{"RoCo", "MindAgent", "CoELA"}

// Fig6 runs one medium episode per system and extracts prompt-token
// series for the LLM-based modules.
func Fig6(cfg Config) []Fig6Series {
	var out []Fig6Series
	// One episode per system, rooted directly at cfg.Seed
	// (EpisodeSeed(seed, 0) == seed, matching the historical run).
	set := cfg.newBatchSet()
	ids := make([]int, len(fig6Systems))
	for i, name := range fig6Systems {
		ids[i] = set.addN(mustGet(name), world.Medium, 0, nil, multiagent.Options{}, 1)
	}
	set.run()
	for i, name := range fig6Systems {
		_, traces := set.results(ids[i])
		series := traces[0].TokenSeries()
		var streams []string
		for s := range series {
			streams = append(streams, s)
		}
		sort.Strings(streams)
		for _, s := range streams {
			if !strings.Contains(s, string(trace.Planning)) && !strings.Contains(s, string(trace.Comms)) {
				continue
			}
			out = append(out, Fig6Series{System: name, Stream: s, Points: series[s]})
		}
	}
	return out
}

// GrowthRatio reports the series' final token count over its initial one —
// the paper's "token length increases as tasks progress".
func (s Fig6Series) GrowthRatio() float64 {
	if len(s.Points) < 2 || s.Points[0].Tokens == 0 {
		return 1
	}
	return float64(s.Points[len(s.Points)-1].Tokens) / float64(s.Points[0].Tokens)
}

// PeakTokens reports the series' maximum prompt size.
func (s Fig6Series) PeakTokens() int {
	peak := 0
	for _, p := range s.Points {
		if p.Tokens > peak {
			peak = p.Tokens
		}
	}
	return peak
}

// RenderFig6 formats compact per-stream summaries plus a sampled series.
func RenderFig6(series []Fig6Series) string {
	var b strings.Builder
	b.WriteString("Fig. 6 — prompt token growth over time (medium tasks)\n")
	fmt.Fprintf(&b, "%-10s %-28s %7s %7s %7s %8s\n", "System", "Stream", "first", "last", "peak", "growth")
	for _, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		first := s.Points[0].Tokens
		last := s.Points[len(s.Points)-1].Tokens
		fmt.Fprintf(&b, "%-10s %-28s %7d %7d %7d %7.1fx\n",
			s.System, s.Stream, first, last, s.PeakTokens(), s.GrowthRatio())
	}
	return b.String()
}
