package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// exactQuantile is the sort-based reference: the rank-⌈q·n⌉ order
// statistic of the raw observations.
func exactQuantile(xs []time.Duration, q float64) time.Duration {
	sorted := append([]time.Duration(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(q * float64(len(sorted)))
	if float64(rank) < q*float64(len(sorted)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// bucketOf mirrors the histogram's bucket mapping for test assertions.
func bucketOf(d time.Duration) int {
	for i := 0; i < HistBuckets-1; i++ {
		if d < histEdges[i] {
			return i
		}
	}
	return HistBuckets - 1
}

// randomLatencies draws n latencies spanning the histogram's dynamic range
// (sub-millisecond to hours) with a log-uniform-ish spread, so every
// quantile lands in a different region across trials.
func randomLatencies(r *rand.Rand, n int) []time.Duration {
	xs := make([]time.Duration, n)
	for i := range xs {
		// Exponent in [0, 7.5): durations from 1µs up to ~8.8 hours.
		exp := r.Float64() * 7.5
		us := time.Microsecond
		d := float64(us)
		for e := 0.0; e+1 <= exp; e++ {
			d *= 10
		}
		frac := exp - float64(int(exp))
		d *= 1 + 9*frac // linear within the decade is fine for coverage
		xs[i] = time.Duration(d)
	}
	return xs
}

// TestHistQuantileWithinOneBucket is the satellite property test: on
// randomized latency sets, p50/p95/p99 estimates land in the same bucket
// as (or the bucket above, for upper-edge reporting) the exact sort-based
// quantile — i.e. within one bucket of exact.
func TestHistQuantileWithinOneBucket(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(2000)
		xs := randomLatencies(r, n)
		var h Hist
		for _, x := range xs {
			h.Observe(x)
		}
		if h.Total() != int64(n) {
			t.Fatalf("trial %d: Total = %d, want %d", trial, h.Total(), n)
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			got := h.Quantile(q)
			exact := exactQuantile(xs, q)
			gb, eb := bucketOf(got), bucketOf(exact)
			// got is the upper edge of exact's bucket, which itself maps to
			// the next bucket up — "within one bucket" is |gb - eb| <= 1,
			// and got must never undershoot exact's bucket.
			if gb < eb || gb > eb+1 {
				t.Fatalf("trial %d n=%d q=%v: quantile %v (bucket %d) vs exact %v (bucket %d)",
					trial, n, q, got, gb, exact, eb)
			}
			if got < exact {
				t.Fatalf("trial %d q=%v: upper-edge estimate %v below exact %v", trial, q, got, exact)
			}
		}
	}
}

// TestHistMergeExactness pins the merge-exactness invariant every
// metrics.Serving field relies on: merge(hist(A), hist(B)) must equal
// hist(A ∪ B) exactly, for randomized A and B.
func TestHistMergeExactness(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a := randomLatencies(r, r.Intn(1000))
		b := randomLatencies(r, r.Intn(1000))
		var ha, hb, hu Hist
		for _, x := range a {
			ha.Observe(x)
			hu.Observe(x)
		}
		for _, x := range b {
			hb.Observe(x)
			hu.Observe(x)
		}
		if got := ha.Merge(hb); got != hu {
			t.Fatalf("trial %d: merge(hist(A), hist(B)) != hist(A∪B)\nmerged %v\nunion  %v",
				trial, got.Counts, hu.Counts)
		}
		// Merge must not mutate its receiver (Serving.Merge is value-based).
		var ha2 Hist
		for _, x := range a {
			ha2.Observe(x)
		}
		if ha != ha2 {
			t.Fatalf("trial %d: Merge mutated its receiver", trial)
		}
	}
}

// TestHistEdgeCases pins the boundary behaviour the serving layer depends
// on: empty and degenerate histograms, negative clamps, and FracBelow's
// bucket-edge exactness.
func TestHistEdgeCases(t *testing.T) {
	var h Hist
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	if got := h.FracBelow(time.Second); got != 1 {
		t.Fatalf("empty FracBelow = %v, want 1", got)
	}

	h.Observe(-time.Second) // clamps to bucket 0
	h.Observe(0)
	if h.Counts[0] != 2 {
		t.Fatalf("negative/zero observations: bucket0 = %d, want 2", h.Counts[0])
	}
	h.Observe(1000 * time.Hour) // clamps to the last bucket
	if h.Counts[HistBuckets-1] != 1 {
		t.Fatalf("overflow observation: last bucket = %d, want 1", h.Counts[HistBuckets-1])
	}

	// FracBelow is exact at bucket edges: 10 observations below 1ms, 10 at
	// 1ms (bucket 1), split exactly by the 1ms edge.
	var f Hist
	for i := 0; i < 10; i++ {
		f.Observe(time.Microsecond)
		f.Observe(time.Millisecond)
	}
	if got := f.FracBelow(time.Millisecond); got != 0.5 {
		t.Fatalf("FracBelow(edge) = %v, want 0.5", got)
	}
}

// TestServingMergeCarriesHists checks the Serving-level wiring: histograms
// and autoscaler counters ride Merge like every other field.
func TestServingMergeCarriesHists(t *testing.T) {
	var a, b Serving
	a.QueueWaitHist.Observe(2 * time.Second)
	a.LatencyHist.Observe(10 * time.Second)
	a.ReplicaTime = time.Minute
	a.ScaleUps = 2
	b.QueueWaitHist.Observe(3 * time.Second)
	b.LatencyHist.Observe(20 * time.Second)
	b.ReplicaTime = 2 * time.Minute
	b.ScaleDowns = 1
	m := a.Merge(b)
	if m.QueueWaitHist.Total() != 2 || m.LatencyHist.Total() != 2 {
		t.Fatalf("merged hist totals = %d/%d, want 2/2",
			m.QueueWaitHist.Total(), m.LatencyHist.Total())
	}
	if m.ReplicaTime != 3*time.Minute || m.ScaleUps != 2 || m.ScaleDowns != 1 {
		t.Fatalf("merged autoscale fields = %v/%d/%d", m.ReplicaTime, m.ScaleUps, m.ScaleDowns)
	}
}
