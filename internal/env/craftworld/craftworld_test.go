package craftworld

import (
	"fmt"
	"testing"

	"embench/internal/modules/memory"
	"embench/internal/rng"
	"embench/internal/world"
)

func newWorld(d world.Difficulty) *World {
	return New(Config{Difficulty: d}, rng.New(11))
}

// omniscient returns records revealing every node plus the live inventory.
func omniscient(w *World) []memory.Record {
	var recs []memory.Record
	for _, n := range w.nodes {
		recs = append(recs, memory.Record{
			Step: w.Step(), Kind: memory.Observation, Key: fmt.Sprintf("node:%d", n.id),
			Payload: NodeFact{ID: n.id, Kind: n.kind.Yields, Cell: n.cell, Tier: n.kind.ToolTier},
			Tokens:  nodeFactTokens,
		})
	}
	inv := map[Item]int{}
	for k, v := range w.inv {
		inv[k] = v
	}
	recs = append(recs, memory.Record{
		Step: w.Step(), Kind: memory.Observation, Key: "inventory", Payload: inv, Tokens: invFactTokens,
	})
	return recs
}

func TestTargetsByDifficulty(t *testing.T) {
	if newWorld(world.Easy).Target() != WoodenPickaxe {
		t.Fatal("easy target should be wooden pickaxe")
	}
	if newWorld(world.Medium).Target() != IronPickaxe {
		t.Fatal("medium target should be iron pickaxe")
	}
	if newWorld(world.Hard).Target() != DiamondPickaxe {
		t.Fatal("hard target should be diamond pickaxe")
	}
}

func TestRecipesFormDAG(t *testing.T) {
	closure := dependencyClosure(DiamondPickaxe)
	if len(closure) < 6 {
		t.Fatalf("diamond closure too small: %v", closure)
	}
	// Every recipe input is either raw or itself in Recipes.
	raw := map[Item]bool{Log: true, Cobblestone: true, IronOre: true, Diamond: true}
	for out, r := range Recipes {
		if r.OutQty <= 0 {
			t.Fatalf("recipe %s yields nothing", out)
		}
		for in := range r.In {
			if _, ok := Recipes[in]; !ok && !raw[in] {
				t.Fatalf("recipe %s input %s is neither raw nor craftable", out, in)
			}
		}
	}
}

func TestToolTiers(t *testing.T) {
	inv := map[Item]int{}
	if tierOf(inv) != 0 {
		t.Fatal("empty inventory should be tier 0")
	}
	inv[WoodenPickaxe] = 1
	if tierOf(inv) != 1 {
		t.Fatal("wooden = tier 1")
	}
	inv[IronPickaxe] = 1
	if tierOf(inv) != 3 {
		t.Fatal("iron = tier 3")
	}
}

func TestCraftRequiresIngredients(t *testing.T) {
	w := newWorld(world.Easy)
	if w.Execute(0, Craft{Out: Planks}).Achieved {
		t.Fatal("crafting planks without logs should fail")
	}
	w.inv[Log] = 1
	res := w.Execute(0, Craft{Out: Planks})
	if !res.Achieved || w.Inventory(Planks) != 4 || w.Inventory(Log) != 0 {
		t.Fatalf("plank craft wrong: %+v planks=%d", res, w.Inventory(Planks))
	}
}

func TestCraftRequiresStation(t *testing.T) {
	w := newWorld(world.Easy)
	w.inv[Planks] = 3
	w.inv[Stick] = 2
	if w.Execute(0, Craft{Out: WoodenPickaxe}).Achieved {
		t.Fatal("pickaxe without crafting table should fail")
	}
	w.inv[CraftingTable] = 1
	if !w.Execute(0, Craft{Out: WoodenPickaxe}).Achieved {
		t.Fatal("pickaxe with table should succeed")
	}
}

func TestGatherRespectsToolTier(t *testing.T) {
	w := newWorld(world.Hard)
	var diamond *node
	for i := range w.nodes {
		if w.nodes[i].kind == DiamondNode {
			diamond = &w.nodes[i]
			break
		}
	}
	res := w.Execute(0, Gather{Node: diamond.id, Cell: diamond.cell, Want: Diamond})
	if res.Achieved {
		t.Fatal("mining diamond bare-handed should fail")
	}
	if res.Note != "tool tier too low" {
		t.Fatalf("note = %q", res.Note)
	}
	w.inv[IronPickaxe] = 1
	if !w.Execute(0, Gather{Node: diamond.id, Cell: diamond.cell, Want: Diamond}).Achieved {
		t.Fatal("mining diamond with iron pickaxe should succeed")
	}
	if w.Inventory(Diamond) != 1 {
		t.Fatal("diamond not collected")
	}
}

func TestGatherWrongCellFails(t *testing.T) {
	w := newWorld(world.Easy)
	n := w.nodes[0]
	wrong := world.C((n.cell.X+3)%gridSize, n.cell.Y)
	if w.Execute(0, Gather{Node: n.id, Cell: wrong, Want: n.kind.Yields}).Achieved {
		t.Fatal("gathering at the wrong cell should fail")
	}
}

func TestOracleSolvesEasy(t *testing.T) {
	w := newWorld(world.Easy)
	steps := driveOracle(t, w, 60)
	if !w.Success() {
		t.Fatalf("easy oracle run failed after %d steps", steps)
	}
}

func TestOracleSolvesHardWithinHorizon(t *testing.T) {
	w := newWorld(world.Hard)
	steps := driveOracle(t, w, 160)
	if !w.Success() {
		t.Fatalf("hard oracle run failed after %d steps (progress %.2f)", steps, w.Progress())
	}
	if steps > w.MaxSteps() {
		t.Fatalf("oracle needed %d steps, horizon is %d", steps, w.MaxSteps())
	}
}

func driveOracle(t *testing.T, w *World, cap int) int {
	t.Helper()
	steps := 0
	for !w.Done() && steps < cap {
		bel := w.BuildBelief(0, omniscient(w))
		prop := w.Propose(0, bel)
		res := w.Execute(0, prop.Good)
		if !res.Achieved {
			t.Fatalf("oracle action %s failed: %s", prop.Good.Describe(), res.Note)
		}
		w.Tick()
		steps++
	}
	return steps
}

func TestPlanOrdersTechTree(t *testing.T) {
	w := newWorld(world.Hard)
	bel := w.BuildBelief(0, omniscient(w))
	prop := w.Propose(0, bel)
	// With nothing in inventory, the first decision must target wood.
	g, ok := prop.Good.(Gather)
	if !ok || g.Want != Log {
		t.Fatalf("first oracle action should gather logs, got %s", prop.Good.Describe())
	}
}

func TestPlanExploresWhenNodesUnknown(t *testing.T) {
	w := newWorld(world.Easy)
	prop := w.Propose(0, w.BuildBelief(0, nil))
	if _, ok := prop.Good.(ExploreSector); !ok {
		t.Fatalf("blank belief should explore, got %s", prop.Good.Describe())
	}
}

func TestCorruptionsPlausibleAndDistinct(t *testing.T) {
	w := newWorld(world.Medium)
	bel := w.BuildBelief(0, omniscient(w))
	prop := w.Propose(0, bel)
	if len(prop.Corruptions) == 0 {
		t.Fatal("no corruptions offered")
	}
	for _, c := range prop.Corruptions {
		if c.ID() == prop.Good.ID() {
			t.Fatal("corruption equals good decision")
		}
	}
}

func TestPrematureCraftCorruptionFails(t *testing.T) {
	w := newWorld(world.Medium)
	bel := w.BuildBelief(0, omniscient(w))
	prop := w.Propose(0, bel)
	for _, c := range prop.Corruptions {
		if cr, ok := c.(Craft); ok && cr.Out == w.Target() {
			if w.Execute(0, cr).Achieved {
				t.Fatal("premature target craft should fail")
			}
			return
		}
	}
	t.Skip("no premature-craft corruption in this instance")
}

func TestProgressMonotone(t *testing.T) {
	w := newWorld(world.Easy)
	if w.Progress() != 0 {
		t.Fatalf("initial progress = %v", w.Progress())
	}
	prev := w.Progress()
	for !w.Done() {
		bel := w.BuildBelief(0, omniscient(w))
		prop := w.Propose(0, bel)
		w.Execute(0, prop.Good)
		w.Tick()
		if p := w.Progress(); p < prev {
			t.Fatalf("progress regressed: %v -> %v", prev, p)
		} else {
			prev = p
		}
	}
	if w.Progress() != 1 {
		t.Fatalf("final progress = %v", w.Progress())
	}
}

func TestObserveRadiusLimited(t *testing.T) {
	w := newWorld(world.Easy)
	obs := w.Observe(0)
	for _, r := range obs.Records {
		if f, ok := r.Payload.(NodeFact); ok {
			if world.Manhattan(f.Cell, w.agent) > viewRadius {
				t.Fatalf("saw node %d beyond view radius", f.ID)
			}
		}
	}
	// Inventory is always in the observation.
	found := false
	for _, r := range obs.Records {
		if r.Key == "inventory" {
			found = true
		}
	}
	if !found {
		t.Fatal("observation must include inventory")
	}
}

func TestBeliefStalenessFromOldInventory(t *testing.T) {
	w := newWorld(world.Easy)
	recs := omniscient(w)
	w.Tick()
	w.Tick()
	w.Tick()
	bel := w.BuildBelief(0, recs)
	if bel.Staleness == 0 {
		t.Fatal("old inventory record should induce staleness")
	}
}

func TestDependencyClosureCanonicalOrder(t *testing.T) {
	// The closure is a plan skeleton: its order must be a canonical
	// function of the recipe graph, not of map iteration. Repeated calls
	// must agree element-for-element.
	want := dependencyClosure(DiamondPickaxe)
	for i := 0; i < 100; i++ {
		got := dependencyClosure(DiamondPickaxe)
		if len(got) != len(want) {
			t.Fatalf("closure length varies: %v vs %v", got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("closure order varies at %d: %v vs %v", j, got, want)
			}
		}
	}
}
