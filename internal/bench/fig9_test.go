package bench

import (
	"reflect"
	"testing"

	"embench/internal/serve"
)

func fig9TestConfig() Config {
	return Config{Episodes: 2, Seed: 11, Parallelism: 1}
}

func TestFig9Shape(t *testing.T) {
	rep := Fig9(fig9TestConfig())
	wantFleet := len(Fig9Episodes) * len(fig9Replicas) * len(fig9Routings)
	if len(rep.Fleet) != wantFleet {
		t.Fatalf("fleet rows = %d, want %d", len(rep.Fleet), wantFleet)
	}
	if len(rep.Agg) != 2*len(Fig9AggAgents) {
		t.Fatalf("aggregation rows = %d, want %d", len(rep.Agg), 2*len(Fig9AggAgents))
	}
	if len(rep.Routing) != 2*len(fig9Routings) {
		t.Fatalf("routing rows = %d, want %d", len(rep.Routing), 2*len(fig9Routings))
	}
	for i, r := range rep.Fleet {
		if r.TaskLatency <= 0 || r.SuccessRate < 0 || r.SuccessRate > 1 {
			t.Fatalf("fleet row %d implausible: %+v", i, r)
		}
	}
}

// TestFig9AggregationBeatsJoinWindow is the acceptance criterion: explicit
// step-phase aggregation must deliver lower mean plan-call latency than
// join-window batching at every team size >= 4.
func TestFig9AggregationBeatsJoinWindow(t *testing.T) {
	rep := Fig9(fig9TestConfig())
	byAgents := map[int]map[bool]Fig9AggRow{}
	for _, r := range rep.Agg {
		if byAgents[r.Agents] == nil {
			byAgents[r.Agents] = map[bool]Fig9AggRow{}
		}
		byAgents[r.Agents][r.Aggregated] = r
	}
	for _, n := range Fig9AggAgents {
		if n < 4 {
			continue
		}
		join, agg := byAgents[n][false], byAgents[n][true]
		if agg.MeanPlanCall >= join.MeanPlanCall {
			t.Fatalf("aggregation should cut mean plan-call latency at %d agents: %v vs %v",
				n, agg.MeanPlanCall, join.MeanPlanCall)
		}
		if agg.MeanQueueWait >= join.MeanQueueWait {
			t.Fatalf("aggregation should cut queue wait at %d agents: %v vs %v",
				n, agg.MeanQueueWait, join.MeanQueueWait)
		}
	}
}

// TestFig9FleetContentionShapes checks the fleet panel tells the paper's
// story: more episodes on one deployment queue longer; replicas relieve
// it; cross-episode sharing raises the cache hit rate over a single
// episode.
func TestFig9FleetContentionShapes(t *testing.T) {
	rep := Fig9(fig9TestConfig())
	pick := func(eps, replicas int, routing serve.RoutingPolicy) Fig9FleetRow {
		for _, r := range rep.Fleet {
			if r.Episodes == eps && r.Replicas == replicas && r.Routing == routing {
				return r
			}
		}
		t.Fatalf("missing fleet row %d/%d/%s", eps, replicas, routing)
		return Fig9FleetRow{}
	}
	one := pick(1, 1, serve.RouteLeastLoaded)
	four := pick(4, 1, serve.RouteLeastLoaded)
	if four.MeanQueueWait <= one.MeanQueueWait {
		t.Fatalf("4 episodes on 1 replica should queue longer than 1: %v vs %v",
			four.MeanQueueWait, one.MeanQueueWait)
	}
	if four.CacheHitRate <= one.CacheHitRate {
		t.Fatalf("cross-episode sharing should raise cache hits: %.3f vs %.3f",
			four.CacheHitRate, one.CacheHitRate)
	}
	relieved := pick(4, 4, serve.RouteLeastLoaded)
	if relieved.MeanQueueWait >= four.MeanQueueWait {
		t.Fatalf("replicas should relieve fleet contention: %v vs %v",
			relieved.MeanQueueWait, four.MeanQueueWait)
	}
	// Routing panel: cache-affinity must beat least-loaded on hit rate in
	// the light-load open-loop replay.
	var ll, ca Fig9RoutingRow
	for _, r := range rep.Routing {
		if r.Replicas == 4 && r.Routing == serve.RouteLeastLoaded {
			ll = r
		}
		if r.Replicas == 4 && r.Routing == serve.RouteCacheAffinity {
			ca = r
		}
	}
	if ca.CacheHitRate <= ll.CacheHitRate {
		t.Fatalf("routing replay: cache-affinity should beat least-loaded: %.3f vs %.3f",
			ca.CacheHitRate, ll.CacheHitRate)
	}
}

func TestFig9RerunAndParallelismByteIdentical(t *testing.T) {
	cfg := fig9TestConfig()
	a, b := Fig9(cfg), Fig9(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Fig9 reruns diverged")
	}
	par := cfg
	par.Parallelism = 4
	if !reflect.DeepEqual(a, Fig9(par)) {
		t.Fatal("Fig9 results changed with worker-pool parallelism")
	}
	if RenderFig9(a) != RenderFig9(b) {
		t.Fatal("Fig9 reports diverged across reruns")
	}
}
